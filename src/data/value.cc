#include "data/value.h"

#include <ostream>

namespace vqdr {

std::ostream& operator<<(std::ostream& os, Value v) {
  return os << "#" << v.id;
}

Value NamePool::Intern(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  Value v(next_++);
  by_name_.emplace(name, v);
  by_id_.emplace(v.id, name);
  return v;
}

std::string NamePool::NameOf(Value v) const {
  auto it = by_id_.find(v.id);
  if (it != by_id_.end()) return it->second;
  return "#" + std::to_string(v.id);
}

}  // namespace vqdr
