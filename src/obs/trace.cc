#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>

#include "obs/metrics.h"

namespace vqdr::obs {

namespace {

struct TraceState {
  std::mutex mu;
  std::deque<TraceEvent> ring;
  std::ofstream sink;
  bool sink_open = false;
  std::chrono::steady_clock::time_point epoch;
  bool epoch_set = false;

  static TraceState& Get() {
    static TraceState* s = new TraceState;  // leaked: outlives static dtors
    return *s;
  }
};

// Single-branch gate read by every span constructor.
std::atomic<bool> g_enabled{false};

// Lazily applies VQDR_TRACE once per process, before the first gate read.
std::once_flag g_env_once;

void InitFromEnv() {
  const char* path = std::getenv("VQDR_TRACE");
  if (path != nullptr && path[0] != '\0') SetTraceSinkPath(path);
}

std::uint64_t MicrosSinceEpochLocked(TraceState& s) {
  auto now = std::chrono::steady_clock::now();
  if (!s.epoch_set) {
    s.epoch = now;
    s.epoch_set = true;
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - s.epoch)
          .count());
}

thread_local int t_depth = 0;

// Dense per-thread ids for trace grouping; 0 means "not assigned yet".
std::atomic<std::uint32_t> g_next_tid{1};
thread_local std::uint32_t t_tid = 0;

void WriteSinkLine(TraceState& s, const TraceEvent& e) {
  std::string line = "{\"name\":";
  internal::AppendJsonString(e.name, &line);
  if (e.has_arg) {
    line += ",\"arg\":";
    line += std::to_string(e.arg);
  }
  line += ",\"start_us\":";
  line += std::to_string(e.start_us);
  line += ",\"dur_us\":";
  line += std::to_string(e.dur_us);
  line += ",\"tid\":";
  line += std::to_string(e.tid);
  line += ",\"depth\":";
  line += std::to_string(e.depth);
  line += "}\n";
  s.sink << line;
  s.sink.flush();
}

}  // namespace

bool TracingEnabled() {
  std::call_once(g_env_once, InitFromEnv);
  return g_enabled.load(std::memory_order_relaxed);
}

void EnableTracing() { g_enabled.store(true, std::memory_order_relaxed); }

void DisableTracing() {
  g_enabled.store(false, std::memory_order_relaxed);
  CloseTraceSink();
}

bool SetTraceSinkPath(const std::string& path) {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink_open) {
    s.sink.close();
    s.sink_open = false;
  }
  s.sink.open(path, std::ios::out | std::ios::trunc);
  if (!s.sink) return false;
  s.sink_open = true;
  g_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void CloseTraceSink() {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink_open) {
    s.sink.flush();
    s.sink.close();
    s.sink_open = false;
  }
}

std::uint32_t CurrentTraceTid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

std::vector<TraceEvent> DrainTraceEvents() {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<TraceEvent> out(s.ring.begin(), s.ring.end());
  s.ring.clear();
  return out;
}

TraceSpan::TraceSpan(const char* name) : name_(name) { Begin(); }

TraceSpan::TraceSpan(const char* name, std::int64_t arg)
    : name_(name), arg_(arg), has_arg_(true) {
  Begin();
}

void TraceSpan::Begin() {
  if (!TracingEnabled()) return;
  active_ = true;
  depth_ = t_depth++;
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  start_us_ = MicrosSinceEpochLocked(s);
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --t_depth;
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  TraceEvent e;
  e.name = name_;
  e.arg = arg_;
  e.has_arg = has_arg_;
  e.start_us = start_us_;
  e.dur_us = MicrosSinceEpochLocked(s) - start_us_;
  e.tid = CurrentTraceTid();
  e.depth = depth_;
  if (s.ring.size() >= kTraceRingCapacity) s.ring.pop_front();
  if (s.sink_open) WriteSinkLine(s, e);
  s.ring.push_back(std::move(e));
}

}  // namespace vqdr::obs
