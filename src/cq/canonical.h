#ifndef VQDR_CQ_CANONICAL_H_
#define VQDR_CQ_CANONICAL_H_

#include <map>
#include <optional>
#include <set>
#include <string>

#include "cq/conjunctive_query.h"
#include "cq/matcher.h"
#include "data/instance.h"
#include "data/value.h"

namespace vqdr {

/// The result of freezing a conjunctive query Q into its canonical instance
/// [Q] (the paper's *frozen body*, Section 3): each variable becomes a fresh
/// domain value, constants denote themselves.
struct FrozenQuery {
  /// The instance [Q] over Q's body schema.
  Instance instance{Schema{}};

  /// The image of the head terms x̄ under the freezing assignment.
  Tuple frozen_head;

  /// The freezing assignment (variables → fresh values).
  std::map<std::string, Value> var_to_value;
};

/// Freezes a *pure* CQ (no =, ≠, ¬). Fresh values come from `factory`,
/// which is first advanced past every constant in the query so that frozen
/// variables never collide with constants.
FrozenQuery Freeze(const ConjunctiveQuery& q, ValueFactory& factory);

/// The inverse of freezing: converts an instance into a CQ whose body atoms
/// are the instance's facts. Values in `constants` stay constants; every
/// other value v becomes the variable "v<id>". `head` lists the values that
/// become the head terms (in order); head values outside `constants` become
/// head variables.
ConjunctiveQuery InstanceToQuery(const Instance& instance, const Tuple& head,
                                 const std::set<Value>& constants,
                                 const std::string& head_name = "Q");

/// Finds a homomorphism h from `from` to `to`: a value mapping with
/// h(fact) ∈ to for every fact ∈ from, extending `fixed` and fixing every
/// value in `constants`. Returns the full mapping (adom(from) → adom(to))
/// or nullopt. `matcher` selects the homomorphism engine (DESIGN.md §12);
/// the default routes through the process default.
std::optional<std::map<Value, Value>> FindInstanceHomomorphism(
    const Instance& from, const Instance& to,
    const std::map<Value, Value>& fixed = {},
    const std::set<Value>& constants = {},
    const MatcherOptions& matcher = {});

}  // namespace vqdr

#endif  // VQDR_CQ_CANONICAL_H_
