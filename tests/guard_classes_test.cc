// Budget classes and budget composition (guard/classes.h, DESIGN.md §13):
// TightenSpec's tightest-limit-wins algebra, admission-slot accounting, the
// class table's default fallback, and the envelope/child Budget composition
// the batch handler and the service admission path rely on — the tightest
// limit wins, a parent's sticky stop propagates into its children, one
// exhausted child never stops its siblings. The threaded cases repeat at
// {1, 2, 8} threads so the same invariants hold under contention.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "guard/budget.h"
#include "guard/classes.h"
#include "guard/outcome.h"

namespace vqdr::guard {
namespace {

TEST(TightenSpec, TightestLimitWinsFieldwise) {
  BudgetSpec a;
  a.wall_ms = 100;
  a.max_steps = 50;
  a.max_atoms = 0;   // unlimited
  a.max_chase_levels = -1;  // unlimited
  BudgetSpec b;
  b.wall_ms = 200;
  b.max_steps = 0;   // unlimited
  b.max_atoms = 10;
  b.max_chase_levels = 3;

  BudgetSpec t = TightenSpec(a, b);
  EXPECT_EQ(t.wall_ms, 100);       // both limited: min
  EXPECT_EQ(t.max_steps, 50u);     // limited beats unlimited
  EXPECT_EQ(t.max_atoms, 10u);     // limited beats unlimited
  EXPECT_EQ(t.max_chase_levels, 3);

  // Symmetric.
  BudgetSpec s = TightenSpec(b, a);
  EXPECT_EQ(s.wall_ms, 100);
  EXPECT_EQ(s.max_steps, 50u);
  EXPECT_EQ(s.max_atoms, 10u);
  EXPECT_EQ(s.max_chase_levels, 3);
}

TEST(TightenSpec, UnlimitedBothStaysUnlimited) {
  BudgetSpec t = TightenSpec(BudgetSpec{}, BudgetSpec{});
  EXPECT_EQ(t.wall_ms, -1);
  EXPECT_EQ(t.max_steps, 0u);
  EXPECT_EQ(t.max_atoms, 0u);
  EXPECT_EQ(t.max_chase_levels, -1);
}

TEST(BudgetClass, SlotAccounting) {
  BudgetClassSpec spec;
  spec.name = "gold";
  spec.max_concurrent = 2;
  spec.retry_after_ms = 7;
  BudgetClass cls(std::move(spec));

  EXPECT_TRUE(cls.TryAcquire());
  EXPECT_TRUE(cls.TryAcquire());
  EXPECT_FALSE(cls.TryAcquire());  // at max_concurrent
  EXPECT_EQ(cls.in_flight(), 2);
  EXPECT_EQ(cls.admitted(), 2u);
  EXPECT_EQ(cls.rejected(), 1u);

  cls.Release();
  EXPECT_TRUE(cls.TryAcquire());  // slot freed
  cls.Release();
  cls.Release();
  EXPECT_EQ(cls.in_flight(), 0);
}

TEST(BudgetClass, ZeroMeansUnlimitedConcurrency) {
  BudgetClassSpec spec;
  spec.name = "open";
  BudgetClass cls(std::move(spec));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(cls.TryAcquire());
  EXPECT_EQ(cls.rejected(), 0u);
  for (int i = 0; i < 100; ++i) cls.Release();
}

TEST(BudgetClass, GrantClampsToClassCap) {
  BudgetClassSpec spec;
  spec.name = "capped";
  spec.cap.max_steps = 100;
  spec.cap.wall_ms = 1000;
  BudgetClass cls(std::move(spec));

  BudgetSpec asked;
  asked.max_steps = 1000000;  // more than the class allows
  asked.max_atoms = 5;        // tighter than the class
  BudgetSpec granted = cls.Grant(asked);
  EXPECT_EQ(granted.max_steps, 100u);
  EXPECT_EQ(granted.wall_ms, 1000);
  EXPECT_EQ(granted.max_atoms, 5u);
}

TEST(BudgetClassTable, DefaultAlwaysResolvable) {
  BudgetClassTable table;
  EXPECT_NE(table.Find("default"), nullptr);
  EXPECT_EQ(table.Find("nope"), nullptr);
  EXPECT_EQ(&table.Resolve(""), table.Find("default"));
  EXPECT_EQ(&table.Resolve("nope"), table.Find("default"));

  BudgetClassSpec gold;
  gold.name = "gold";
  gold.max_concurrent = 1;
  table.Define(std::move(gold));
  EXPECT_EQ(&table.Resolve("gold"), table.Find("gold"));
  EXPECT_EQ(table.Names().size(), 2u);

  // Redefining "default" imposes a baseline policy.
  BudgetClassSpec def;
  def.name = "default";
  def.cap.max_steps = 10;
  table.Define(std::move(def));
  EXPECT_EQ(table.Resolve("").spec().cap.max_steps, 10u);
}

#ifndef VQDR_GUARD_DISABLED

TEST(BudgetComposition, ChildTripsOnOwnTighterLimit) {
  guard::Budget envelope(BudgetSpec{});  // unlimited
  BudgetSpec tight;
  tight.max_steps = 3;
  guard::Budget child(tight, &envelope);

  EXPECT_EQ(child.Checkpoint(3), Outcome::kComplete);
  EXPECT_EQ(child.Checkpoint(1), Outcome::kStepBudgetExhausted);
  EXPECT_TRUE(child.Stopped());
  // One exhausted child never stops the envelope or its siblings.
  EXPECT_FALSE(envelope.Stopped());
  guard::Budget sibling(BudgetSpec{}, &envelope);
  EXPECT_EQ(sibling.Checkpoint(10), Outcome::kComplete);
}

TEST(BudgetComposition, EnvelopeLimitStopsEveryChild) {
  BudgetSpec env_spec;
  env_spec.max_steps = 10;
  guard::Budget envelope(env_spec);
  guard::Budget a(BudgetSpec{}, &envelope);
  guard::Budget b(BudgetSpec{}, &envelope);

  EXPECT_EQ(a.Checkpoint(10), Outcome::kComplete);  // envelope now full
  EXPECT_EQ(b.Checkpoint(1), Outcome::kStepBudgetExhausted);
  EXPECT_TRUE(envelope.Stopped());
  // The stop is sticky and visible from the other child's next checkpoint.
  EXPECT_EQ(a.Checkpoint(1), Outcome::kStepBudgetExhausted);
}

TEST(BudgetComposition, ParentCancelPropagatesSticky) {
  guard::Budget envelope;
  guard::Budget child(BudgetSpec{}, &envelope);
  EXPECT_EQ(child.Checkpoint(), Outcome::kComplete);
  envelope.Cancel();
  EXPECT_EQ(child.Checkpoint(), Outcome::kCancelled);
  EXPECT_EQ(child.stop_reason(), Outcome::kCancelled);
}

TEST(BudgetComposition, ChildChargesParentStepsAndAtoms) {
  guard::Budget envelope;
  guard::Budget a(BudgetSpec{}, &envelope);
  guard::Budget b(BudgetSpec{}, &envelope);
  ASSERT_EQ(a.Checkpoint(5), Outcome::kComplete);
  ASSERT_EQ(b.Checkpoint(7), Outcome::kComplete);
  ASSERT_EQ(a.NoteAtoms(11), Outcome::kComplete);
  EXPECT_EQ(envelope.steps_used(), 12u);
  EXPECT_EQ(envelope.atoms_used(), 11u);
  EXPECT_EQ(a.steps_used(), 5u);
  EXPECT_EQ(b.steps_used(), 7u);
}

TEST(BudgetComposition, AtomEnvelopeStopsSiblings) {
  BudgetSpec env_spec;
  env_spec.max_atoms = 10;
  guard::Budget envelope(env_spec);
  guard::Budget a(BudgetSpec{}, &envelope);
  guard::Budget b(BudgetSpec{}, &envelope);
  EXPECT_EQ(a.NoteAtoms(10), Outcome::kComplete);
  EXPECT_EQ(b.NoteAtoms(1), Outcome::kMemoryBudgetExhausted);
  EXPECT_EQ(a.NoteAtoms(1), Outcome::kMemoryBudgetExhausted);
}

// The same invariants under contention: N workers each charge their own
// child of a shared envelope until stopped. Regardless of thread count the
// envelope trips exactly once on its own limit, every child ends stopped
// with the envelope's reason, and the envelope's recorded steps overshoot
// its limit by at most one in-flight checkpoint per worker.
TEST(BudgetComposition, ThreadedEnvelopeDifferential) {
  for (int threads : {1, 2, 8}) {
    constexpr std::uint64_t kLimit = 10000;
    BudgetSpec env_spec;
    env_spec.max_steps = kLimit;
    guard::Budget envelope(env_spec);

    std::vector<std::unique_ptr<guard::Budget>> children;
    children.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      children.push_back(
          std::make_unique<guard::Budget>(BudgetSpec{}, &envelope));
    }

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&children, t] {
        while (children[t]->Checkpoint(1) == Outcome::kComplete) {
        }
      });
    }
    for (std::thread& w : workers) w.join();

    EXPECT_TRUE(envelope.Stopped()) << "threads=" << threads;
    EXPECT_EQ(envelope.stop_reason(), Outcome::kStepBudgetExhausted);
    std::uint64_t total_child_steps = 0;
    for (auto& child : children) {
      EXPECT_EQ(child->stop_reason(), Outcome::kStepBudgetExhausted)
          << "threads=" << threads;
      total_child_steps += child->steps_used();
    }
    // A child charges itself before the (already stopped) envelope declines
    // the charge, so the child total can exceed the envelope's by at most
    // one in-flight checkpoint per worker.
    EXPECT_GE(total_child_steps, envelope.steps_used());
    EXPECT_LE(total_child_steps,
              envelope.steps_used() + static_cast<std::uint64_t>(threads));
    EXPECT_GE(envelope.steps_used(), kLimit);
    EXPECT_LE(envelope.steps_used(),
              kLimit + static_cast<std::uint64_t>(threads));
  }
}

#endif  // VQDR_GUARD_DISABLED

}  // namespace
}  // namespace vqdr::guard
