#include "gen/random_instance.h"

namespace vqdr {

Instance RandomInstance(const Schema& schema, Rng& rng,
                        const RandomInstanceOptions& options) {
  Instance result(schema);
  for (const RelationDecl& d : schema.decls()) {
    if (d.arity == 0) {
      if (options.randomize_propositions && rng.Chance(1, 2)) {
        result.GetMutable(d.name).SetBool(true);
      }
      continue;
    }
    for (int i = 0; i < options.tuples_per_relation; ++i) {
      Tuple t;
      t.reserve(d.arity);
      for (int j = 0; j < d.arity; ++j) {
        t.push_back(Value(1 + static_cast<std::int64_t>(
                                  rng.Below(options.domain_size))));
      }
      result.AddFact(d.name, t);
    }
  }
  return result;
}

}  // namespace vqdr
