#ifndef VQDR_GEN_WORKLOADS_H_
#define VQDR_GEN_WORKLOADS_H_

#include <string>

#include "cq/conjunctive_query.h"
#include "views/view_set.h"

namespace vqdr {

/// Query/view workload generators for the benchmark harness. They produce
/// the parametric families used by EXPERIMENTS.md: chain (path) queries,
/// star queries, and path-view sets over a binary edge relation.

/// Q(x0, xk) :- E(x0,x1), …, E(x{k-1},xk)  — a length-k chain query.
ConjunctiveQuery ChainQuery(int length, const std::string& edge = "E",
                            const std::string& head = "Q");

/// Q(c) :- E(c,x1), …, E(c,xk)             — a k-armed star (equivalent to
/// one atom; exercises minimisation).
ConjunctiveQuery StarQuery(int arms, const std::string& edge = "E",
                           const std::string& head = "Q");

/// Boolean k-cycle query: Q() :- E(x1,x2), …, E(xk,x1).
ConjunctiveQuery CycleQuery(int length, const std::string& edge = "E",
                            const std::string& head = "Q");

/// View set {P1, …, Pm} where Pi(x, y) holds iff there is an E-path of
/// length i from x to y. PathViews(2) = {P1 = E, P2 = E∘E}.
ViewSet PathViews(int max_length, const std::string& edge = "E");

/// A directed path instance 1 -> 2 -> … -> n over the edge relation.
Instance PathInstance(int nodes, const std::string& edge = "E");

/// A random directed graph with `nodes` nodes and `edges` edge draws.
Instance RandomGraph(int nodes, int edges, std::uint64_t seed,
                     const std::string& edge = "E");

}  // namespace vqdr

#endif  // VQDR_GEN_WORKLOADS_H_
