#ifndef VQDR_FO_ORDER_INVARIANCE_H_
#define VQDR_FO_ORDER_INVARIANCE_H_

#include <string>
#include <vector>

#include "data/instance.h"
#include "fo/formula.h"

namespace vqdr {

/// Result of checking whether an order-augmented FO query is
/// order-invariant on a given instance (Example 3.2 / Proposition 5.7).
struct OrderInvarianceResult {
  /// True if the query returned the same answer under every strict total
  /// order on the active domain.
  bool invariant = false;

  /// The common answer when invariant (the answer under the first order
  /// otherwise).
  Relation answer{0};

  /// Number of orders examined (|adom|! for exhaustive checking).
  std::size_t orders_checked = 0;
};

/// Extends `db` with `order_rel` holding the strict total order induced by
/// `ranked` (ranked[i] < ranked[j] for i < j).
Instance WithStrictOrder(const Instance& db, const std::string& order_rel,
                         const std::vector<Value>& ranked);

/// Evaluates `q` (over the schema of `db` plus binary `order_rel`) under
/// every strict total order on adom(db) and reports whether the answer is
/// independent of the order. Exhaustive: |adom(db)|! evaluations.
OrderInvarianceResult CheckOrderInvariance(const FoQuery& q,
                                           const Instance& db,
                                           const std::string& order_rel);

}  // namespace vqdr

#endif  // VQDR_FO_ORDER_INVARIANCE_H_
