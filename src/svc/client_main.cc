// vqdr-client: one-shot CLI for the vqdr-serve line protocol.
//
// Usage:
//   vqdr-client --socket=PATH [--raw] [--timeout-ms=N] [REQUEST_JSON]
//
// With a REQUEST_JSON argument, sends that single request and prints the
// response. Without one, reads request lines from stdin and prints one
// response line per request (blank lines skipped). --raw unwraps
// result.body from the response — `vqdr-client --socket=S --raw
// '{"op":"metrics"}'` prints the Prometheus text exposition directly, ready
// for a scrape pipe.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/json.h"
#include "svc/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--raw] [--timeout-ms=N] "
               "[REQUEST_JSON]\n",
               argv0);
}

// Prints the response; with raw, prints result.body (or result as a string)
// instead of the envelope. Returns false for transport-level failure.
bool PrintResponse(const std::string& line, bool raw) {
  if (!raw) {
    std::printf("%s\n", line.c_str());
    return true;
  }
  std::string error;
  std::optional<vqdr::obs::json::Value> parsed =
      vqdr::obs::json::Parse(line, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "vqdr-client: unparseable response: %s\n",
                 error.c_str());
    std::printf("%s\n", line.c_str());
    return true;
  }
  const vqdr::obs::json::Value* result = parsed->Find("result");
  if (result == nullptr) {
    // Errors and rejections have no result; show the envelope.
    std::printf("%s\n", line.c_str());
    return true;
  }
  const vqdr::obs::json::Value* body = result->Find("body");
  if (body != nullptr && body->IsString()) {
    // Body carries its own trailing newline (Prometheus exposition).
    std::fputs(body->string_value.c_str(), stdout);
    return true;
  }
  std::printf("%s\n", line.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string request;
  bool raw = false;
  bool have_request = false;
  std::uint64_t timeout_ms = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(std::strlen("--socket="));
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      timeout_ms = std::strtoull(
          arg.c_str() + std::strlen("--timeout-ms="), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else {
      request = arg;
      have_request = true;
    }
  }
  if (socket_path.empty()) {
    Usage(argv[0]);
    return 2;
  }

  vqdr::StatusOr<vqdr::svc::Client> client =
      vqdr::svc::Client::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "vqdr-client: %s\n",
                 client.status().message().c_str());
    return 1;
  }

  auto call = [&](const std::string& line) -> int {
    vqdr::StatusOr<std::string> response =
        client.value().Call(line, timeout_ms);
    if (!response.ok()) {
      std::fprintf(stderr, "vqdr-client: %s\n",
                   response.status().message().c_str());
      return 1;
    }
    PrintResponse(response.value(), raw);
    return 0;
  };

  if (have_request) return call(request);

  std::string line;
  int rc = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    rc = call(line);
    if (rc != 0) break;
  }
  return rc;
}
