// Property-based sweeps (parameterized over deterministic seeds): the
// cross-cutting invariants the paper's definitions rest on — genericity,
// the determinacy/rewriting equivalence on *constructed* rewritable pairs,
// evaluator agreement across languages, and containment laws.

#include <gtest/gtest.h>

#include "core/determinacy.h"
#include "core/finite_search.h"
#include "core/genericity.h"
#include "core/rewriting.h"
#include "cq/containment.h"
#include "cq/matcher.h"
#include "cq/minimize.h"
#include "data/isomorphism.h"
#include "fo/evaluator.h"
#include "fo/from_cq.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// A value permutation for genericity checks: shift non-colliding values.
Instance Permuted(const Instance& d, std::int64_t shift) {
  return d.Apply([shift](Value v) { return Value(v.id + shift); });
}

Relation PermutedRelation(const Relation& r, std::int64_t shift) {
  return r.Apply([shift](Value v) { return Value(v.id + shift); });
}

// --- Genericity: Q(π(D)) = π(Q(D)) for every language wrapper ---

TEST_P(SeededProperty, CqEvaluationIsGeneric) {
  Rng rng(GetParam());
  RandomCqOptions options;
  ConjunctiveQuery q = RandomCq(rng, options);
  RandomInstanceOptions iopts;
  iopts.domain_size = 5;
  Instance d = RandomInstance(options.schema, rng, iopts);
  Relation direct = EvaluateCq(q, Permuted(d, 100));
  Relation mapped = PermutedRelation(EvaluateCq(q, d), 100);
  EXPECT_EQ(direct, mapped);
}

TEST_P(SeededProperty, FoEvaluationIsGeneric) {
  Rng rng(GetParam());
  RandomCqOptions options;
  ConjunctiveQuery cq = RandomCq(rng, options);
  FoQuery q = CqToFoQuery(cq);
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  Instance d = RandomInstance(options.schema, rng, iopts);
  EXPECT_EQ(EvaluateFo(q, Permuted(d, 100)),
            PermutedRelation(EvaluateFo(q, d), 100));
}

// --- Language agreement: the CQ matcher and the FO evaluator coincide ---

TEST_P(SeededProperty, CqAndFoEvaluatorsAgree) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 3;
  ConjunctiveQuery q = RandomCq(rng, options);
  FoQuery fo = CqToFoQuery(q);
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  iopts.tuples_per_relation = 8;
  for (int i = 0; i < 3; ++i) {
    Instance d = RandomInstance(options.schema, rng, iopts);
    EXPECT_EQ(EvaluateCq(q, d), EvaluateFo(fo, d)) << q.ToString();
  }
}

// --- Containment laws over random query pools ---

TEST_P(SeededProperty, ContainmentIsReflexiveAndRespectsEvaluation) {
  Rng rng(GetParam());
  RandomCqOptions options;
  ConjunctiveQuery q1 = RandomCq(rng, options);
  ConjunctiveQuery q2 = RandomCq(rng, options);
  EXPECT_TRUE(CqContainedIn(q1, q1));
  EXPECT_TRUE(CqContainedIn(q2, q2));

  // Soundness of the decision against actual evaluation: if q1 ⊆ q2 then
  // q1(D) ⊆ q2(D) on sampled instances.
  bool contained = CqContainedIn(q1, q2);
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  for (int i = 0; i < 3; ++i) {
    Instance d = RandomInstance(options.schema, rng, iopts);
    if (contained) {
      EXPECT_TRUE(EvaluateCq(q1, d).IsSubsetOf(EvaluateCq(q2, d)))
          << q1.ToString() << "  vs  " << q2.ToString();
    }
  }
}

TEST_P(SeededProperty, ContainmentIsTransitiveOnSamples) {
  Rng rng(GetParam());
  RandomCqOptions options;
  ConjunctiveQuery a = RandomCq(rng, options);
  ConjunctiveQuery b = RandomCq(rng, options);
  ConjunctiveQuery c = RandomCq(rng, options);
  if (CqContainedIn(a, b) && CqContainedIn(b, c)) {
    EXPECT_TRUE(CqContainedIn(a, c));
  }
}

TEST_P(SeededProperty, MinimizationPreservesSemantics) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 4;
  ConjunctiveQuery q = RandomCq(rng, options);
  ConjunctiveQuery core = MinimizeCq(q);
  EXPECT_LE(core.atoms().size(), q.atoms().size());
  EXPECT_TRUE(CqEquivalent(q, core));
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  Instance d = RandomInstance(options.schema, rng, iopts);
  EXPECT_EQ(EvaluateCq(q, d), EvaluateCq(core, d));
}

// --- The headline property: constructed rewritable pairs are recognised ---

TEST_P(SeededProperty, ConstructedRewritingsAreAlwaysRecognised) {
  // Build random views V, a random rewriting R over σ_V, and set
  // Q := expansion(R). Then Q = R ∘ V by construction, so the chase test
  // must say "determined" and the synthesiser must produce a working
  // rewriting.
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 2;
  ViewSet views = RandomCqViews(rng, options, /*count=*/2);
  ConjunctiveQuery r = RandomRewriting(rng, views, /*max_atoms=*/2,
                                       /*head_arity=*/1);
  ConjunctiveQuery q = ExpandRewriting(r, views);
  if (!q.IsPureCq() || !q.IsSafe() || q.atoms().empty()) {
    GTEST_SKIP() << "degenerate expansion";
  }

  UnrestrictedDeterminacyResult det = DecideUnrestrictedDeterminacy(views, q);
  EXPECT_TRUE(det.determined)
      << "views:\n" << views.ToString() << "rewriting: " << r.ToString()
      << "\nexpansion: " << q.ToString();

  CqRewritingResult synthesized = FindCqRewriting(views, q);
  ASSERT_TRUE(synthesized.exists);
  EXPECT_TRUE(CqEquivalent(ExpandRewriting(*synthesized.rewriting, views), q));
}

TEST_P(SeededProperty, DeterminedPairsPassGenericityChecks) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 2;
  ViewSet views = RandomCqViews(rng, options, 2);
  ConjunctiveQuery r = RandomRewriting(rng, views, 2, 1);
  ConjunctiveQuery q = ExpandRewriting(r, views);
  if (!q.IsPureCq() || !q.IsSafe() || q.atoms().empty()) {
    GTEST_SKIP() << "degenerate expansion";
  }
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  Instance d = RandomInstance(options.schema, rng, iopts);
  // Proposition 4.3's necessary conditions on a determined pair.
  EXPECT_TRUE(CheckAnswerDomainContained(views, Query::FromCq(q), d));
  EXPECT_TRUE(CheckAutomorphismsPreserved(views, Query::FromCq(q), d));
}

TEST_P(SeededProperty, ChaseDecisionSoundAgainstFiniteSearch) {
  // For random (V, Q): "determined" must never coexist with a finite
  // counterexample. (The converse direction is the paper's open problem.)
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 2;
  options.variable_pool = 3;
  ViewSet views = RandomCqViews(rng, options, 2);
  ConjunctiveQuery q = RandomCq(rng, options);
  if (!q.IsSafe() || q.atoms().empty()) GTEST_SKIP();

  UnrestrictedDeterminacyResult det = DecideUnrestrictedDeterminacy(views, q);
  if (!det.determined) GTEST_SKIP() << "nothing to check";

  EnumerationOptions eopts;
  eopts.domain_size = 2;
  auto search = SearchDeterminacyCounterexample(views, Query::FromCq(q),
                                                options.schema, eopts);
  EXPECT_NE(search.verdict, SearchVerdict::kCounterexampleFound)
      << "UNSOUND: chase said determined but counterexample exists\n"
      << views.ToString() << q.ToString();
}

// --- View application commutes with isomorphism ---

TEST_P(SeededProperty, ViewImagesRespectIsomorphism) {
  Rng rng(GetParam());
  RandomCqOptions options;
  ViewSet views = RandomCqViews(rng, options, 2);
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  Instance d = RandomInstance(options.schema, rng, iopts);
  Instance image_of_permuted = views.Apply(Permuted(d, 50));
  Instance permuted_image = Permuted(views.Apply(d), 50);
  EXPECT_EQ(image_of_permuted, permuted_image);
}

// --- Relation algebra laws on random data ---

TEST_P(SeededProperty, RelationSetAlgebraLaws) {
  Rng rng(GetParam());
  Schema schema{{"R", 2}};
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  Relation a = RandomInstance(schema, rng, iopts).Get("R");
  Relation b = RandomInstance(schema, rng, iopts).Get("R");
  EXPECT_EQ(a.Union(b), b.Union(a));
  EXPECT_EQ(a.Intersect(b), b.Intersect(a));
  EXPECT_EQ(a.Difference(b).Union(a.Intersect(b)), a);
  EXPECT_TRUE(a.Intersect(b).IsSubsetOf(a.Union(b)));
  EXPECT_EQ(a.Union(a), a);
  EXPECT_EQ(a.Intersect(a), a);
}

// --- Canonical key is an isomorphism invariant on random instances ---

TEST_P(SeededProperty, CanonicalKeyInvariantUnderPermutation) {
  Rng rng(GetParam());
  Schema schema{{"E", 2}};
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  iopts.tuples_per_relation = 5;
  Instance d = RandomInstance(schema, rng, iopts);
  EXPECT_EQ(CanonicalKey(d), CanonicalKey(Permuted(d, 77)));
}

}  // namespace
}  // namespace vqdr
