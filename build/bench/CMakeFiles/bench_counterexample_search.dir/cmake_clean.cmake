file(REMOVE_RECURSE
  "CMakeFiles/bench_counterexample_search.dir/bench_counterexample_search.cc.o"
  "CMakeFiles/bench_counterexample_search.dir/bench_counterexample_search.cc.o.d"
  "bench_counterexample_search"
  "bench_counterexample_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counterexample_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
