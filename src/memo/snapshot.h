#ifndef VQDR_MEMO_SNAPSHOT_H_
#define VQDR_MEMO_SNAPSHOT_H_

#ifdef VQDR_MEMO_DISABLED
#error "memo/snapshot.h must not be included when VQDR_MEMO is OFF; \
include memo/memo.h and guard call sites with #ifndef VQDR_MEMO_DISABLED."
#endif

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <typeinfo>

#include "base/status.h"
#include "memo/store.h"

// memo::snapshot — a versioned, crash-safe on-disk image of a memo::Store
// (DESIGN.md §14), so a restarted process serves warm.
//
// File format (all integers little-endian):
//
//   "VQDRSNAP"  8-byte magic
//   u32         format version (kSnapshotVersion)
//   u64         entry count
//   entry*      count times:
//     u32       body length
//     body      Str(tag) Str(key) Str(payload)   (wire.h encoding)
//     u32       CRC-32 of body
//
// Load policy: any structural damage — bad magic, version skew, truncation,
// trailing bytes, a CRC mismatch, an undecodable payload of a *known* tag —
// rejects the whole file (memo.snapshot.corrupt; the store is left exactly
// as it was, never partially loaded). An entry whose CRC is valid but whose
// tag is unregistered is skipped individually (forward compatibility with
// snapshots written by newer builds). A missing file is a clean cold boot.
//
// Write policy: serialize fully in memory, write to `path + ".tmp"`, fsync,
// rename over `path`, fsync the directory. A crash at any point leaves
// either the old complete snapshot or the new complete snapshot.
//
// Safety of persisting results at all: every cached result type is keyed by
// an exact serialization of its inputs (including value-factory state), so a
// restarted process that interns values differently simply misses — a stale
// snapshot entry can waste a slot, never poison a result.

namespace vqdr::memo {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`; exposed so tests and fuzz
/// seeds can forge or break entry checksums deliberately.
std::uint32_t SnapshotCrc32(std::string_view bytes);

/// Registers the codec for one cached result type. `tag` must be stable
/// across builds (bump it — e.g. "det.v2" — when the payload encoding
/// changes); `encode` receives a value of the registered type, `decode`
/// returns nullptr on malformed payloads. Call once per type, from a static
/// initializer in the TU that owns the type. Thread-safe.
void RegisterSnapshotCodec(
    const std::type_info& type, std::string tag,
    std::function<std::string(const void*)> encode,
    std::function<std::shared_ptr<const void>(std::string_view)> decode);

/// Typed sugar for RegisterSnapshotCodec.
template <typename T>
bool RegisterSnapshotType(const char* tag,
                          std::string (*encode)(const T&),
                          std::shared_ptr<const T> (*decode)(
                              std::string_view)) {
  RegisterSnapshotCodec(
      typeid(T), tag,
      [encode](const void* value) {
        return encode(*static_cast<const T*>(value));
      },
      [decode](std::string_view payload) -> std::shared_ptr<const void> {
        return decode(payload);
      });
  return true;
}

/// True if a codec is registered under `tag` (tests / diagnostics).
bool HasSnapshotCodec(const std::string& tag);

/// Per-operation result detail.
struct SnapshotIoStats {
  std::uint64_t entries = 0;  // written or restored
  std::uint64_t skipped = 0;  // load: unknown-tag entries; save: codec-less
  std::uint64_t bytes = 0;    // file image size
  bool corrupt = false;       // load only: file rejected, nothing installed
  std::string error;          // human detail when corrupt or failed
};

/// Serializes every snapshot-codec-registered entry of `store` to the file
/// image format (in memory). Entries whose type has no codec are skipped.
std::string SerializeSnapshot(const Store& store, SnapshotIoStats* stats);

/// Validates `bytes` and, only if fully valid, installs its entries into
/// `store`. On corruption the store is untouched and stats.corrupt is set.
SnapshotIoStats DeserializeSnapshot(std::string_view bytes, Store& store);

/// SerializeSnapshot + crash-safe write to `path` (temp file, fsync, atomic
/// rename, directory fsync).
Status SaveSnapshot(const Store& store, const std::string& path,
                    SnapshotIoStats* stats = nullptr);

/// Reads `path` and DeserializeSnapshot()s it. A missing file returns
/// cleanly with zero entries and corrupt == false.
SnapshotIoStats LoadSnapshot(Store& store, const std::string& path);

/// Loads the path named by VQDR_MEMO_SNAPSHOT, if set; called by
/// GlobalStore() on first touch. Returns true if a load was attempted.
bool LoadSnapshotFromEnv(Store& store);

/// Periodic background flusher: every `interval_ms` (0 = manual-only, no
/// thread) it writes `store` to `path`, skipping the write when the store
/// has not changed since the previous flush. The destructor stops the
/// thread and performs a final flush, so owning one from a service object
/// gives flush-on-drain for free.
class SnapshotFlusher {
 public:
  SnapshotFlusher(Store& store, std::string path, std::uint64_t interval_ms);
  ~SnapshotFlusher();

  SnapshotFlusher(const SnapshotFlusher&) = delete;
  SnapshotFlusher& operator=(const SnapshotFlusher&) = delete;

  /// Flushes now (regardless of the change check). Thread-safe.
  Status FlushNow(SnapshotIoStats* stats = nullptr);

  /// Stops the background thread; final_flush writes once more first.
  void Stop(bool final_flush = true);

  const std::string& path() const { return path_; }

 private:
  void Loop();
  bool Dirty();

  Store& store_;
  const std::string path_;
  const std::uint64_t interval_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::uint64_t last_change_marker_ = ~std::uint64_t{0};
  std::thread thread_;
};

}  // namespace vqdr::memo

#endif  // VQDR_MEMO_SNAPSHOT_H_
