#ifndef VQDR_REDUCTIONS_SAT_REDUCTIONS_H_
#define VQDR_REDUCTIONS_SAT_REDUCTIONS_H_

#include <utility>

#include "views/view_set.h"

namespace vqdr {

/// The Proposition 4.1 reductions: determinacy inherits undecidability from
/// satisfiability of the query language and validity of the view language.

/// A (views, query) pair produced by one of the reductions, plus the base
/// schema it lives over.
struct DeterminacyInstance {
  Schema base;
  ViewSet views;
  Query query;
};

/// From satisfiability: given a Boolean query φ over `sigma`, builds the
/// empty view set and Q = φ ∧ R(x) over σ ∪ {R/1}. Then V ↠ Q iff φ is
/// unsatisfiable.
DeterminacyInstance FromSatisfiability(const Query& phi, const Schema& sigma);

/// From validity: given Boolean φ over `sigma`, builds V = {φ ∧ R(x)} and
/// Q = R(x) over σ ∪ {R/1}. Then V ↠ Q iff φ is valid.
DeterminacyInstance FromValidity(const Query& phi, const Schema& sigma);

}  // namespace vqdr

#endif  // VQDR_REDUCTIONS_SAT_REDUCTIONS_H_
