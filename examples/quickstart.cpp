// Quickstart: define views and a query, decide determinacy, synthesize a
// rewriting, and validate it — the library's core loop in ~80 lines.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/determinacy.h"
#include "core/finite_search.h"
#include "core/rewriting.h"
#include "cq/matcher.h"
#include "cq/parser.h"

using namespace vqdr;

int main() {
  NamePool pool;

  // A binary edge relation, two conjunctive views (paths of length 1 and
  // 2), and a query asking for paths of length 3.
  Schema base{{"E", 2}};
  ViewSet views;
  views.Add("P1", Query::FromCq(ParseCq("P1(x, y) :- E(x, y)", pool).value()));
  views.Add("P2", Query::FromCq(
                      ParseCq("P2(x, y) :- E(x, z), E(z, y)", pool).value()));
  ConjunctiveQuery q =
      ParseCq("Q(x, y) :- E(x, a), E(a, b), E(b, y)", pool).value();

  std::cout << "Views:\n" << views.ToString();
  std::cout << "Query: " << CqToString(q, pool) << "\n\n";

  // 1. Decide determinacy (Theorem 3.7: exact in the unrestricted case,
  //    and a sound positive certificate for the finite case).
  UnrestrictedDeterminacyResult det = DecideUnrestrictedDeterminacy(views, q);
  std::cout << "V determines Q (unrestricted): "
            << (det.determined ? "YES" : "NO") << "\n";

  if (det.determined) {
    // 2. Synthesize an equivalent rewriting (Theorem 3.3 / LMSS [22]).
    CqRewritingResult rewriting = FindCqRewriting(views, q);
    std::cout << "Rewriting: " << CqToString(*rewriting.rewriting, pool)
              << "\n";

    // 3. Validate semantically over all instances with up to 2 elements.
    EnumerationOptions options;
    options.domain_size = 2;
    RewritingValidation validation =
        ValidateRewriting(views, Query::FromCq(q),
                          Query::FromCq(*rewriting.rewriting), base, options);
    std::cout << "Validation over small instances: "
              << (validation.valid ? "PASSED" : "FAILED") << " ("
              << (validation.exhaustive ? "exhaustive" : "truncated")
              << ")\n\n";

    // 4. Use it: answer Q from the view extents only.
    Instance d = ParseInstance("E(ann, bob), E(bob, cat), E(cat, dan)", base,
                               pool)
                     .value();
    Instance view_extent = views.Apply(d);
    Relation direct = EvaluateCq(q, d);
    Relation via_views = EvaluateCq(*rewriting.rewriting, view_extent);
    std::cout << "Q(D) computed directly:   " << direct.ToString() << "\n";
    std::cout << "Q(D) from views only:     " << via_views.ToString() << "\n";
    std::cout << "Agree: " << (direct == via_views ? "yes" : "NO") << "\n";
  } else {
    // Exhibit why not: a pair of instances the views cannot distinguish.
    EnumerationOptions options;
    options.domain_size = 2;
    auto search = SearchDeterminacyCounterexample(views, Query::FromCq(q),
                                                  base, options);
    if (search.counterexample.has_value()) {
      std::cout << "Counterexample pair:\nD1:\n"
                << InstanceToString(search.counterexample->d1, pool)
                << "D2:\n"
                << InstanceToString(search.counterexample->d2, pool);
    }
  }
  return 0;
}
