
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cq/canonical.cc" "src/cq/CMakeFiles/vqdr_cq.dir/canonical.cc.o" "gcc" "src/cq/CMakeFiles/vqdr_cq.dir/canonical.cc.o.d"
  "/root/repo/src/cq/conjunctive_query.cc" "src/cq/CMakeFiles/vqdr_cq.dir/conjunctive_query.cc.o" "gcc" "src/cq/CMakeFiles/vqdr_cq.dir/conjunctive_query.cc.o.d"
  "/root/repo/src/cq/containment.cc" "src/cq/CMakeFiles/vqdr_cq.dir/containment.cc.o" "gcc" "src/cq/CMakeFiles/vqdr_cq.dir/containment.cc.o.d"
  "/root/repo/src/cq/matcher.cc" "src/cq/CMakeFiles/vqdr_cq.dir/matcher.cc.o" "gcc" "src/cq/CMakeFiles/vqdr_cq.dir/matcher.cc.o.d"
  "/root/repo/src/cq/minimize.cc" "src/cq/CMakeFiles/vqdr_cq.dir/minimize.cc.o" "gcc" "src/cq/CMakeFiles/vqdr_cq.dir/minimize.cc.o.d"
  "/root/repo/src/cq/parser.cc" "src/cq/CMakeFiles/vqdr_cq.dir/parser.cc.o" "gcc" "src/cq/CMakeFiles/vqdr_cq.dir/parser.cc.o.d"
  "/root/repo/src/cq/ucq.cc" "src/cq/CMakeFiles/vqdr_cq.dir/ucq.cc.o" "gcc" "src/cq/CMakeFiles/vqdr_cq.dir/ucq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/vqdr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vqdr_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
