// libFuzzer harness for the vqdr-serve request protocol (svc/proto.h):
// ParseRequest must never crash, hang, or trip UB on ANY byte string — it
// returns a Status instead. On an accepted parse the harness additionally
// checks the serialization invariants the wire contract promises:
//
//  * an accepted request re-serialized into a response envelope (the echoed
//    id plus every string field pushed through AppendJson) must be valid
//    JSON for obs::json::Parse — the escaper never emits a frame the
//    service's own parser rejects;
//  * SerializeResponse output must parse, and its "ok"/"code" fields must
//    round-trip the Response they came from.
//
// Built two ways by fuzz/CMakeLists.txt:
//   * fuzz_svc (Clang + -fsanitize=fuzzer): the coverage-guided run;
//   * fuzz_svc_replay (any compiler, replay_main.cc): deterministic corpus
//     replay for CI, `fuzz_svc_replay fuzz/corpus/svc`.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "svc/proto.h"

namespace {

// The service reads line frames; cap harness inputs near the frame limit so
// the fuzzer exercises the oversize path without megabyte memcpy noise.
constexpr std::size_t kMaxInput = 1 << 14;

void CheckResponseSerializes(const vqdr::svc::Response& response) {
  std::string line = vqdr::svc::SerializeResponse(response);
  std::string error;
  std::optional<vqdr::obs::json::Value> parsed =
      vqdr::obs::json::Parse(line, &error);
  if (!parsed.has_value()) __builtin_trap();  // emitted unparseable JSON
  const vqdr::obs::json::Value* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->IsBool() || ok->bool_value != response.ok) {
    __builtin_trap();
  }
  if (!response.code.empty() &&
      parsed->StringOr("code", "") != response.code) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > kMaxInput) return 0;
  std::string_view line(reinterpret_cast<const char*>(data), size);

  vqdr::StatusOr<vqdr::svc::Request> req = vqdr::svc::ParseRequest(line);
  if (!req.ok()) {
    // The rejection must itself serialize into a parseable frame — this is
    // exactly what the server sends back for a hostile line.
    CheckResponseSerializes(vqdr::svc::ErrorResponse(
        "bad_request", req.status().message()));
    return 0;
  }

  // Echo every parser-admitted string through the response path: the id
  // verbatim (it is pre-serialized JSON) and the payload fields through the
  // escaper. Any input that survives ParseRequest must survive this.
  vqdr::svc::Response response;
  response.id = req->id;
  response.ok = true;
  response.has_outcome = true;
  std::string result = "{\"op\":";
  vqdr::svc::AppendJson(req->op, &result);
  result.append(",\"tenant\":");
  vqdr::svc::AppendJson(req->tenant, &result);
  result.append(",\"text\":");
  vqdr::svc::AppendJson(req->text, &result);
  result.append(",\"query\":");
  vqdr::svc::AppendJson(req->query, &result);
  result.append(",\"views\":[");
  for (std::size_t i = 0; i < req->views.size(); ++i) {
    if (i > 0) result.push_back(',');
    vqdr::svc::AppendJson(req->views[i], &result);
  }
  result.append("],\"items\":");
  result.append(std::to_string(req->items.size()));
  result.push_back('}');
  response.result_json = std::move(result);
  CheckResponseSerializes(response);

  vqdr::svc::Response rejection =
      vqdr::svc::ErrorResponse("overloaded", "request rejected: overloaded");
  rejection.id = req->id;
  rejection.has_retry = true;
  rejection.retry_after_ms = 25;
  CheckResponseSerializes(rejection);
  return 0;
}
