#include "fo/from_cq.h"

#include <vector>

#include "base/check.h"

namespace vqdr {

namespace {

// Builds the matrix of one disjunct with head placeholders `heads`.
FoPtr DisjunctFormula(const ConjunctiveQuery& q,
                      const std::vector<std::string>& heads) {
  // Rename body variables apart from placeholders.
  ConjunctiveQuery body = q.RenameVariables(
      [](const std::string& v) { return v + "#b"; });

  std::vector<FoPtr> conjuncts;
  for (const Atom& a : body.atoms()) {
    conjuncts.push_back(FoFormula::MakeAtom(a));
  }
  for (const Atom& a : body.negated_atoms()) {
    conjuncts.push_back(FoFormula::Not(FoFormula::MakeAtom(a)));
  }
  for (const TermComparison& c : body.equalities()) {
    conjuncts.push_back(FoFormula::Eq(c.lhs, c.rhs));
  }
  for (const TermComparison& c : body.disequalities()) {
    conjuncts.push_back(FoFormula::Not(FoFormula::Eq(c.lhs, c.rhs)));
  }
  for (std::size_t i = 0; i < heads.size(); ++i) {
    conjuncts.push_back(
        FoFormula::Eq(Term::Var(heads[i]), body.head_terms()[i]));
  }

  // Existentially close every body variable.
  std::set<std::string> vars;
  for (const std::string& v : body.AllVariables()) vars.insert(v);
  std::vector<std::string> quantified(vars.begin(), vars.end());
  return FoFormula::Exists(std::move(quantified),
                           FoFormula::And(std::move(conjuncts)));
}

std::vector<std::string> HeadPlaceholders(int arity) {
  std::vector<std::string> heads;
  heads.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    heads.push_back("h" + std::to_string(i + 1));
  }
  return heads;
}

}  // namespace

FoQuery CqToFoQuery(const ConjunctiveQuery& q) {
  VQDR_CHECK(q.IsSafe()) << "CqToFoQuery requires a safe query";
  FoQuery result;
  result.head_name = q.head_name();
  result.free_vars = HeadPlaceholders(q.head_arity());
  result.formula = DisjunctFormula(q, result.free_vars);
  return result;
}

FoQuery UcqToFoQuery(const UnionQuery& q) {
  VQDR_CHECK(!q.empty());
  FoQuery result;
  result.head_name = q.head_name();
  result.free_vars = HeadPlaceholders(q.head_arity());
  std::vector<FoPtr> disjuncts;
  for (const ConjunctiveQuery& d : q.disjuncts()) {
    VQDR_CHECK(d.IsSafe()) << "UcqToFoQuery requires safe disjuncts";
    disjuncts.push_back(DisjunctFormula(d, result.free_vars));
  }
  result.formula = FoFormula::Or(std::move(disjuncts));
  return result;
}

}  // namespace vqdr
