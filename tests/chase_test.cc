// Tests for the V-inverse chase and the chase chain of Section 3
// (Lemma 3.4, Proposition 3.6).

#include <gtest/gtest.h>

#include "chase/chain.h"
#include "chase/view_inverse.h"
#include "cq/canonical.h"
#include "cq/parser.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

class ChaseFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  Instance Db(const std::string& text, const Schema& schema) {
    auto d = ParseInstance(text, schema, pool_);
    EXPECT_TRUE(d.ok()) << d.status().message();
    return d.value();
  }

  NamePool pool_;
};

TEST_F(ChaseFixture, ViewInverseCreatesFrozenBodies) {
  // One view: P2(x,y) = path of length 2.
  ViewSet views;
  views.Add("P2", Query::FromCq(Cq("P2(x, y) :- E(x, z), E(z, y)")));

  Schema view_schema = views.OutputSchema();
  Instance s(view_schema);
  s.AddFact("P2", MakeTuple({1, 2}));

  ValueFactory factory;
  Instance empty(Schema{{"E", 2}});
  Instance d = ViewInverse(views, empty, s, factory);

  // The chase adds E(1, f), E(f, 2) with f fresh.
  EXPECT_EQ(d.Get("E").size(), 2u);
  Relation p2 = views.Apply(d).Get("P2");
  EXPECT_TRUE(p2.Contains(MakeTuple({1, 2})));
}

TEST_F(ChaseFixture, ViewInverseSkipsWitnessedTuples) {
  ViewSet views;
  views.Add("P1", Query::FromCq(Cq("P1(x, y) :- E(x, y)")));

  Instance base(Schema{{"E", 2}});
  base.AddFact("E", MakeTuple({1, 2}));

  // S' extends V(base) with one new tuple.
  Instance s_prime(views.OutputSchema());
  s_prime.AddFact("P1", MakeTuple({1, 2}));
  s_prime.AddFact("P1", MakeTuple({2, 3}));

  ValueFactory factory;
  Instance d = ViewInverse(views, base, s_prime, factory);
  // Only the new tuple is chased; the old one is kept, not duplicated.
  EXPECT_EQ(d.Get("E").size(), 2u);
  EXPECT_TRUE(d.HasFact("E", MakeTuple({2, 3})));
}

TEST_F(ChaseFixture, ViewInverseHandlesBooleanViews) {
  ViewSet views;
  views.Add("B", Query::FromCq(Cq("B() :- E(x, y), E(y, x)")));

  Instance s(views.OutputSchema());
  s.GetMutable("B").SetBool(true);

  ValueFactory factory;
  Instance empty(Schema{{"E", 2}});
  Instance d = ViewInverse(views, empty, s, factory);
  // The Boolean view's frozen body was added.
  EXPECT_EQ(d.Get("E").size(), 2u);
  EXPECT_TRUE(views.Apply(d).Get("B").AsBool());
}

TEST_F(ChaseFixture, Lemma34HomomorphismBackToOriginal) {
  // Lemma 3.4: for D' = V_∅^{-1}(V(D)) there is a homomorphism D' → D
  // fixing adom(D) — here checked with values of D fixed as constants.
  ViewSet views = PathViews(2);
  Instance d = PathInstance(4);

  Instance s = views.Apply(d);
  ValueFactory factory;
  Instance empty(ChaseSchema(views, d.schema()));
  Instance d_prime = ViewInverse(views, empty, s, factory);

  std::map<Value, Value> fixed;
  for (Value v : d.ActiveDomain()) fixed[v] = v;
  auto hom = FindInstanceHomomorphism(d_prime, d, fixed);
  EXPECT_TRUE(hom.has_value());
}

TEST_F(ChaseFixture, ChainPropertiesProposition36) {
  // Views: paths of length 1 and 3; query: path of length 2 — the classic
  // determined-but-interesting instance family.
  ViewSet views;
  views.Add("P1", Query::FromCq(Cq("P1(x, y) :- E(x, y)")));
  views.Add("P3", Query::FromCq(Cq("P3(x, y) :- E(x, a), E(a, b), E(b, y)")));
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");

  ValueFactory factory;
  ChaseChain chain = BuildChaseChain(views, q, /*levels=*/2, factory);

  for (int k = 0; k <= 2; ++k) {
    // Property 1: hom D'_k → D_k fixing adom(D_k).
    std::map<Value, Value> fixed;
    for (Value v : chain.d[k].ActiveDomain()) fixed[v] = v;
    EXPECT_TRUE(
        FindInstanceHomomorphism(chain.d_prime[k], chain.d[k], fixed)
            .has_value())
        << "property 1 fails at level " << k;

    if (k == 0) continue;
    // Property 2: S'_k extends S_{k-1}.
    EXPECT_TRUE(chain.s[k - 1].IsExtendedBy(chain.s_prime[k]))
        << "property 2 fails at level " << k;
    // Property 3: D_k extends D_{k-1}, with hom D_k → D_{k-1} fixing it.
    EXPECT_TRUE(chain.d[k - 1].IsExtendedBy(chain.d[k]))
        << "property 3 (extension) fails at level " << k;
    std::map<Value, Value> fixed_prev;
    for (Value v : chain.d[k - 1].ActiveDomain()) fixed_prev[v] = v;
    EXPECT_TRUE(FindInstanceHomomorphism(chain.d[k], chain.d[k - 1],
                                         fixed_prev)
                    .has_value())
        << "property 3 (hom) fails at level " << k;
    // Property 4: S_k extends S'_k.
    EXPECT_TRUE(chain.s_prime[k].IsExtendedBy(chain.s[k]))
        << "property 4 fails at level " << k;
    // Property 5: D'_k extends D'_{k-1} with hom back.
    EXPECT_TRUE(chain.d_prime[k - 1].IsExtendedBy(chain.d_prime[k]))
        << "property 5 (extension) fails at level " << k;
    std::map<Value, Value> fixed_dp;
    for (Value v : chain.d_prime[k - 1].ActiveDomain()) fixed_dp[v] = v;
    EXPECT_TRUE(FindInstanceHomomorphism(chain.d_prime[k],
                                         chain.d_prime[k - 1], fixed_dp)
                    .has_value())
        << "property 5 (hom) fails at level " << k;
  }
}

TEST_F(ChaseFixture, ChainViewImagesConvergeTowardsAgreement) {
  // The proof of Theorem 3.3 takes unions: S_∞ = S'_∞. At every finite
  // level, S'_{k+1} ⊆ S_{k+1} and S_k ⊆ S'_{k+1} — the two sequences
  // interleave.
  ViewSet views;
  views.Add("P1", Query::FromCq(Cq("P1(x, y) :- E(x, y)")));
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");

  ValueFactory factory;
  ChaseChain chain = BuildChaseChain(views, q, 3, factory);
  for (int k = 0; k + 1 <= 3; ++k) {
    EXPECT_TRUE(chain.s[k].IsSubInstanceOf(chain.s_prime[k + 1]));
    EXPECT_TRUE(chain.s_prime[k + 1].IsSubInstanceOf(chain.s[k + 1]));
  }
}

}  // namespace
}  // namespace vqdr
