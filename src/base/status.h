#ifndef VQDR_BASE_STATUS_H_
#define VQDR_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/check.h"

namespace vqdr {

// Minimal error-reporting types. The library does not use exceptions
// (following the Google style guide); fallible public entry points (parsers,
// budgeted searches) return Status or StatusOr<T>.

/// A success-or-error value carrying a human-readable message on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status with the given message.
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value so `return value;` works in functions returning
  /// StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    VQDR_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// The contained value; the StatusOr must be OK.
  const T& value() const& {
    VQDR_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return *value_;
  }

  T& value() & {
    VQDR_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return *value_;
  }

  T&& value() && {
    VQDR_CHECK(ok()) << "value() on error StatusOr: " << status_.message();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vqdr

#endif  // VQDR_BASE_STATUS_H_
