#ifndef VQDR_CQ_EXPLAIN_BRIDGE_H_
#define VQDR_CQ_EXPLAIN_BRIDGE_H_

#include <vector>

#include "cq/conjunctive_query.h"
#include "cq/matcher.h"
#include "data/instance.h"
#include "obs/explain.h"

// Conversions between the solver's typed objects (Instance, Atom, Binding)
// and the generic provenance payloads of obs::ExplainLog. The obs layer
// sits below cq in the link order, so these conversions live here rather
// than in obs.

namespace vqdr {

/// Flattens an instance into (relation, value-ids) facts, in schema order.
std::vector<obs::ExplainFact> ToExplainFacts(const Instance& instance);

/// Converts one query atom; variables keep their names, constants their ids.
obs::ExplainAtom ToExplainAtom(const Atom& atom);

/// Builds the self-contained replayable witness for "binding maps q into db
/// with head image expected_head". `q` is normalized (PropagateEqualities)
/// exactly as CqAnswerContains normalizes it, so a binding produced by the
/// witness-returning CqAnswerContains overload lines up with the recorded
/// atoms. The witness carries the instance, so Verify needs nothing else.
obs::ExplainWitness MakeContainmentWitness(const ConjunctiveQuery& q,
                                           const Instance& db,
                                           const Tuple& expected_head,
                                           const Binding& binding);

}  // namespace vqdr

#endif  // VQDR_CQ_EXPLAIN_BRIDGE_H_
