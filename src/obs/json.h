#ifndef VQDR_OBS_JSON_H_
#define VQDR_OBS_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// A minimal JSON reader for the observability layer's own artifacts: the
// JSONL trace sink, the explain-log round trip, and the Chrome-trace
// converter all parse documents this repository itself emitted. It accepts
// standard JSON (RFC 8259) with two deliberate simplifications: \uXXXX
// escapes decode only the ASCII range (the emitters never produce more),
// and numbers keep an exact int64 when they have no fraction/exponent.
//
// This is an internal tool, not a general-purpose parser — no streaming, no
// comments, inputs are trusted to be small (traces, metrics, explain logs).

namespace vqdr::obs::json {

/// A parsed JSON value. Object member order is preserved as emitted.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Numbers carry both views; is_int says whether int_value is exact.
  double number = 0;
  std::int64_t int_value = 0;
  bool is_int = false;
  std::string string_value;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// First member with the given key, or nullptr. Objects the obs layer
  /// emits never repeat keys.
  const Value* Find(std::string_view key) const;

  /// Convenience lookups with defaults; wrong-kind members yield the
  /// default rather than aborting (callers validate shape separately).
  std::int64_t IntOr(std::string_view key, std::int64_t fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;
};

/// Parses one JSON document. Returns nullopt (with *error set, if given) on
/// malformed input or trailing garbage. Nesting is capped at 64 levels.
std::optional<Value> Parse(std::string_view text, std::string* error = nullptr);

}  // namespace vqdr::obs::json

#endif  // VQDR_OBS_JSON_H_
