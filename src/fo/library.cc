#include "fo/library.h"

namespace vqdr {

namespace {

FoPtr Lt(const std::string& rel, const std::string& a, const std::string& b) {
  return FoFormula::MakeAtom(Atom(rel, {Term::Var(a), Term::Var(b)}));
}

}  // namespace

FoPtr StrictTotalOrderSentence(const std::string& rel) {
  using F = FoFormula;
  FoPtr irreflexive = F::Forall({"x"}, F::Not(Lt(rel, "x", "x")));
  FoPtr transitive = F::Forall(
      {"x", "y", "z"},
      F::Implies(F::And({Lt(rel, "x", "y"), Lt(rel, "y", "z")}),
                 Lt(rel, "x", "z")));
  FoPtr total = F::Forall(
      {"x", "y"},
      F::Implies(F::Not(F::Eq(Term::Var("x"), Term::Var("y"))),
                 F::Or({Lt(rel, "x", "y"), Lt(rel, "y", "x")})));
  return F::And({irreflexive, transitive, total});
}

FoPtr LinearOrderSentence(const std::string& rel) {
  using F = FoFormula;
  FoPtr reflexive = F::Forall({"x"}, Lt(rel, "x", "x"));
  FoPtr antisymmetric = F::Forall(
      {"x", "y"},
      F::Implies(F::And({Lt(rel, "x", "y"), Lt(rel, "y", "x")}),
                 F::Eq(Term::Var("x"), Term::Var("y"))));
  FoPtr transitive = F::Forall(
      {"x", "y", "z"},
      F::Implies(F::And({Lt(rel, "x", "y"), Lt(rel, "y", "z")}),
                 Lt(rel, "x", "z")));
  FoPtr total = F::Forall(
      {"x", "y"}, F::Or({Lt(rel, "x", "y"), Lt(rel, "y", "x")}));
  return F::And({reflexive, antisymmetric, transitive, total});
}

FoPtr AndAlso(FoPtr a, FoPtr b) { return FoFormula::And({a, b}); }

}  // namespace vqdr
