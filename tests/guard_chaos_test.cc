// Chaos battery for the guard subsystem (ctest label GUARD): every fault
// kind — injected allocation failure, task-throw inside the thread pool,
// cancellation at exactly step N — fired at randomized-but-seeded steps
// into search, chase, containment, and batch at thread counts {1, 2, 8}.
// Every scenario must end in a clean structured outcome: no crash, no
// deadlock, pool fully drained, no wrong or fabricated verdict, and a
// budget-exhausted prefix identical to the same prefix of an unbudgeted
// serial run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "chase/chain.h"
#include "core/determinacy.h"
#include "core/determinacy_batch.h"
#include "core/finite_search.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/workloads.h"
#include "guard/budget.h"
#include "guard/fault.h"
#include "par/pool.h"

namespace vqdr {
namespace {

using guard::Budget;
using guard::BudgetSpec;
using guard::FaultKind;
using guard::Outcome;

const int kThreadCounts[] = {1, 2, 8};

/// RAII disarm so a failing assertion cannot leak an armed fault into the
/// next scenario.
struct FaultScope {
  FaultScope(FaultKind kind, const char* site, std::uint64_t at_hit) {
    guard::ArmFault(kind, site, at_hit);
  }
  ~FaultScope() { guard::DisarmFaults(); }
};

class GuardChaosFixture : public ::testing::Test {
 protected:
  void TearDown() override { guard::DisarmFaults(); }

  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  ViewSet CqViews(const std::vector<std::string>& defs) {
    ViewSet views;
    for (const std::string& def : defs) {
      ConjunctiveQuery q = Cq(def);
      views.Add(q.head_name(), Query::FromCq(q));
    }
    return views;
  }

  NamePool pool_;
};

// --- the pool itself -------------------------------------------------------

TEST_F(GuardChaosFixture, PoolCapturesTaskThrowAndKeepsDraining) {
  for (int threads : kThreadCounts) {
    FaultScope fault(FaultKind::kTaskThrow, "pool.task", /*at_hit=*/3);
    std::atomic<int> ran{0};
    {
      par::ThreadPool pool(threads);
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&ran] { ran.fetch_add(1); });
      }
      pool.Wait();
      // Exactly one task was killed by the injected throw; every other task
      // still ran — the pool drained instead of terminating.
      EXPECT_EQ(pool.error_count(), 1u) << "threads=" << threads;
      EXPECT_EQ(ran.load(), 49) << "threads=" << threads;
      std::exception_ptr error = pool.TakeFirstError();
      ASSERT_TRUE(error != nullptr);
      EXPECT_THROW(std::rethrow_exception(error), guard::InjectedTaskError);
      EXPECT_EQ(pool.error_count(), 0u);  // TakeFirstError clears the state
    }
    EXPECT_TRUE(guard::FaultFired());
  }
}

// --- search under fire -----------------------------------------------------

TEST_F(GuardChaosFixture, SearchSurvivesAllocFailureAtSeededSteps) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema base{{"E", 2}};
  Rng rng(0x5EAF00D);

  for (int threads : kThreadCounts) {
    for (int round = 0; round < 3; ++round) {
      std::uint64_t at = 1 + rng.Below(40);
      FaultScope fault(FaultKind::kAllocFailure, "search.instances", at);
      Budget budget;
      EnumerationOptions options;
      options.domain_size = 3;  // 512 instances: the fault always lands
      options.threads = threads;
      options.budget = &budget;
      DeterminacySearchResult result =
          SearchDeterminacyCounterexample(views, q, base, options);
      EXPECT_TRUE(guard::FaultFired())
          << "threads=" << threads << " at=" << at;
      EXPECT_EQ(result.outcome, Outcome::kInternalError)
          << "threads=" << threads << " at=" << at;
      EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
      EXPECT_FALSE(result.counterexample.has_value());
      EXPECT_EQ(budget.stop_reason(), Outcome::kInternalError);
    }
  }
}

TEST_F(GuardChaosFixture, SearchSurvivesTaskThrowInParallelWorkers) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema base{{"E", 2}};
  Rng rng(0xC0FFEE);

  for (int threads : kThreadCounts) {
    if (threads == 1) continue;  // the serial path never enters the pool
    std::uint64_t at = 1 + rng.Below(4);
    FaultScope fault(FaultKind::kTaskThrow, "pool.task", at);
    Budget budget;
    EnumerationOptions options;
    options.domain_size = 3;
    options.threads = threads;
    options.budget = &budget;
    DeterminacySearchResult result =
        SearchDeterminacyCounterexample(views, q, base, options);
    EXPECT_TRUE(guard::FaultFired()) << "threads=" << threads;
    EXPECT_EQ(result.outcome, Outcome::kInternalError) << "threads=" << threads;
    EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
  }
}

TEST_F(GuardChaosFixture, SearchCancelledAtExactStepStopsCleanly) {
  ViewSet views = PathViews(2);
  Query q = Query::FromCq(ChainQuery(3));
  Schema base{{"E", 2}};
  Rng rng(0xCA11);

  for (int threads : kThreadCounts) {
    std::uint64_t at = 1 + rng.Below(100);
    FaultScope fault(FaultKind::kCancel, nullptr, at);
    Budget budget;
    EnumerationOptions options;
    options.domain_size = 3;
    options.threads = threads;
    options.budget = &budget;
    DeterminacySearchResult result =
        SearchDeterminacyCounterexample(views, q, base, options);
    EXPECT_TRUE(guard::FaultFired()) << "threads=" << threads << " at=" << at;
    EXPECT_EQ(result.outcome, Outcome::kCancelled)
        << "threads=" << threads << " at=" << at;
    EXPECT_EQ(result.verdict, SearchVerdict::kBudgetExhausted);
    EXPECT_GE(budget.steps_used(), at);
  }
}

TEST_F(GuardChaosFixture, BudgetExhaustedPrefixMatchesUnbudgetedSerialRun) {
  // The honesty contract: a budget-stopped serial search examined exactly a
  // prefix of the canonical enumeration order, so re-running unbudgeted
  // over that same prefix (via max_instances) reproduces it byte for byte —
  // same count, same (absent) counterexample, same verdict class.
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, y)"));
  Schema base{{"E", 2}};
  Rng rng(0xBEEF);

  for (int round = 0; round < 5; ++round) {
    std::uint64_t max_steps = 1 + rng.Below(12);
    Budget budget(BudgetSpec{.max_steps = max_steps});
    EnumerationOptions governed;
    governed.domain_size = 2;
    governed.budget = &budget;
    DeterminacySearchResult stopped =
        SearchDeterminacyCounterexample(views, q, base, governed);

    EnumerationOptions replay;
    replay.domain_size = 2;
    replay.max_instances = stopped.instances_examined;
    DeterminacySearchResult reference =
        SearchDeterminacyCounterexample(views, q, base, replay);

    EXPECT_EQ(stopped.instances_examined, reference.instances_examined)
        << "max_steps=" << max_steps;
    ASSERT_EQ(stopped.counterexample.has_value(),
              reference.counterexample.has_value());
    if (stopped.counterexample.has_value()) {
      // Found before the budget tripped: identical pair, definitive verdict.
      EXPECT_EQ(stopped.counterexample->d1, reference.counterexample->d1);
      EXPECT_EQ(stopped.counterexample->d2, reference.counterexample->d2);
      EXPECT_EQ(stopped.verdict, SearchVerdict::kCounterexampleFound);
      EXPECT_EQ(reference.verdict, SearchVerdict::kCounterexampleFound);
    } else {
      EXPECT_EQ(stopped.verdict, SearchVerdict::kBudgetExhausted);
    }
  }
}

// --- chase under fire ------------------------------------------------------

TEST_F(GuardChaosFixture, ChaseSurvivesAllocFailureWithWholeLevels) {
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)",
                           "P3(x, y) :- E(x, a), E(a, b), E(b, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, c), E(c, y)");

  ValueFactory clean_factory;
  ChaseChain clean = BuildChaseChain(views, q, /*levels=*/2, clean_factory);
  ASSERT_EQ(clean.outcome, Outcome::kComplete);

  Rng rng(0xC4A5E);
  for (int round = 0; round < 4; ++round) {
    std::uint64_t at = 1 + rng.Below(10);
    FaultScope fault(FaultKind::kAllocFailure, "chase.view_inverse", at);
    Budget budget;
    ChaseChainOptions options;
    options.levels = 2;
    options.budget = &budget;
    ValueFactory factory;
    ChaseChain chain = BuildChaseChain(views, q, options, factory);
    EXPECT_TRUE(guard::FaultFired()) << "at=" << at;
    EXPECT_EQ(chain.outcome, Outcome::kInternalError) << "at=" << at;
    // Levels are only appended whole, and every kept level is exact.
    ASSERT_LE(chain.d.size(), clean.d.size());
    for (std::size_t k = 0; k < chain.d.size(); ++k) {
      EXPECT_EQ(chain.d[k], clean.d[k]) << "at=" << at << " level " << k;
      EXPECT_EQ(chain.d_prime[k], clean.d_prime[k])
          << "at=" << at << " level " << k;
    }
  }
}

// --- containment under fire ------------------------------------------------

TEST_F(GuardChaosFixture, ContainmentSurvivesAllocFailureInPatternSweep) {
  ConjunctiveQuery q1 = Cq(
      "Q(a, b, c, d, e) :- R(a, b), R(b, c), R(c, d), R(d, e), a != e");
  ConjunctiveQuery q2 = Cq("Q(a, b, c, d, e) :- R(a, b), R(b, c), R(d, e)");
  Rng rng(0x9A77E59);

  for (int threads : kThreadCounts) {
    std::uint64_t at = 1 + rng.Below(8);
    FaultScope fault(FaultKind::kAllocFailure, "cq.pattern", at);
    Budget budget;
    CqContainmentOptions options;
    options.threads = threads;
    options.budget = &budget;
    ContainmentResult result = CqContainedInGoverned(q1, q2, options);
    EXPECT_TRUE(guard::FaultFired()) << "threads=" << threads << " at=" << at;
    EXPECT_EQ(result.outcome, Outcome::kInternalError)
        << "threads=" << threads << " at=" << at;
    // The sweep never completed, so the (true) verdict is only "no witness
    // so far" — the definitive false verdict must never appear, because
    // q1 ⊆ q2 really does hold.
    EXPECT_TRUE(result.contained);
  }
}

TEST_F(GuardChaosFixture, ContainmentCancelAtStepStopsSweep) {
  ConjunctiveQuery q1 = Cq(
      "Q(a, b, c, d, e) :- R(a, b), R(b, c), R(c, d), R(d, e), a != e");
  ConjunctiveQuery q2 = Cq("Q(a, b, c, d, e) :- R(a, b), R(b, c), R(d, e)");

  for (int threads : kThreadCounts) {
    FaultScope fault(FaultKind::kCancel, nullptr, /*at_hit=*/3);
    Budget budget;
    CqContainmentOptions options;
    options.threads = threads;
    options.budget = &budget;
    ContainmentResult result = CqContainedInGoverned(q1, q2, options);
    EXPECT_TRUE(guard::FaultFired()) << "threads=" << threads;
    EXPECT_EQ(result.outcome, Outcome::kCancelled) << "threads=" << threads;
  }
}

// --- batch under fire ------------------------------------------------------

TEST_F(GuardChaosFixture, BatchSurvivesEveryFaultKind) {
  DeterminacyBatchItem determined;
  determined.views = CqViews({"V(x, y) :- E(x, y)"});
  determined.query = Cq("Q(x, y) :- E(x, z), E(z, y)");
  DeterminacyBatchItem refuted;
  refuted.views = CqViews({"W(x) :- F(x, y)"});
  refuted.query = Cq("Q(x, y) :- F(x, y)");
  std::vector<DeterminacyBatchItem> items;
  for (int i = 0; i < 4; ++i) {
    items.push_back(determined);
    items.push_back(refuted);
  }

  Rng rng(0xBA7C4);
  for (int threads : kThreadCounts) {
    struct Scenario {
      FaultKind kind;
      const char* site;
      Outcome expected;
    };
    std::vector<Scenario> scenarios = {
        {FaultKind::kAllocFailure, "chase.view_inverse",
         Outcome::kInternalError},
        {FaultKind::kCancel, nullptr, Outcome::kCancelled},
    };
    if (threads > 1) {
      scenarios.push_back(
          {FaultKind::kTaskThrow, "pool.task", Outcome::kInternalError});
    }
    for (const Scenario& s : scenarios) {
      std::uint64_t at = 1 + rng.Below(6);
      FaultScope fault(s.kind, s.site, at);
      Budget budget;
      DeterminacyBatchResult result =
          DecideUnrestrictedDeterminacyBatchGoverned(items, threads, &budget);
      EXPECT_TRUE(guard::FaultFired())
          << "threads=" << threads << " kind=" << static_cast<int>(s.kind)
          << " at=" << at;
      EXPECT_EQ(result.outcome, s.expected)
          << "threads=" << threads << " kind=" << static_cast<int>(s.kind)
          << " at=" << at;
      EXPECT_LT(result.items_completed, items.size());
      ASSERT_EQ(result.results.size(), items.size());
      // No wrong verdicts: every item claiming completion matches the
      // ungoverned truth for its (views, query) pair.
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (!guard::IsComplete(result.results[i].outcome)) continue;
        EXPECT_EQ(result.results[i].determined, i % 2 == 0)
            << "item " << i << " threads=" << threads;
      }
    }
  }
}

// --- determinacy decision under fire ---------------------------------------

TEST_F(GuardChaosFixture, DeterminacyDecisionSurvivesChaseAllocFailure) {
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)",
                           "P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");
  ASSERT_TRUE(DecideUnrestrictedDeterminacy(views, q).determined);

  FaultScope fault(FaultKind::kAllocFailure, "chase.view_inverse",
                   /*at_hit=*/2);
  Budget budget;
  UnrestrictedDeterminacyResult result =
      DecideUnrestrictedDeterminacy(views, q, &budget);
  EXPECT_TRUE(guard::FaultFired());
  EXPECT_EQ(result.outcome, Outcome::kInternalError);
  // The decision could not finish: no fabricated positive.
  EXPECT_FALSE(result.determined);
  EXPECT_FALSE(result.canonical_rewriting.has_value());
}

}  // namespace
}  // namespace vqdr
