// Corollaries 5.6 / 5.9 / 5.13, demonstrated: on the paper's witness pairs
// V(D₁) ⊆ V(D₂), so *every* monotone rewriting M satisfies
// M(V(D₁)) ⊆ M(V(D₂)); since Q(D₁) ⊄ Q(D₂), no monotone M can equal Q_V.
// These tests exercise the argument with concrete candidates from each
// monotone language (CQ, UCQ, Datalog≠) and with the generic inclusion.

#include <gtest/gtest.h>

#include "cq/matcher.h"
#include "cq/parser.h"
#include "datalog/program.h"
#include "reductions/counterexamples.h"

namespace vqdr {
namespace {

class MonotoneCompleteness : public ::testing::Test {
 protected:
  NamePool pool_;
};

TEST_F(MonotoneCompleteness, Prop58EveryMonotoneCandidateFails) {
  NonMonotonicityFamily family = Prop58Family(pool_);
  const Instance& s1 = family.witness.view_image1;
  const Instance& s2 = family.witness.view_image2;
  ASSERT_TRUE(s1.IsSubInstanceOf(s2));
  Relation q1 = family.query.Eval(family.witness.d1);
  Relation q2 = family.query.Eval(family.witness.d2);
  ASSERT_FALSE(q1.IsSubsetOf(q2));

  // A spread of natural monotone candidates over the view schema; each is
  // correct on ONE side at most, and monotonicity dooms all of them.
  std::vector<std::string> cq_candidates = {
      "M(x) :- V1(x)",
      "M(x) :- V2(x)",
      "M(x) :- V1(x), V2(x)",
      "M(x) :- V2(x), V3(y)",
  };
  for (const std::string& text : cq_candidates) {
    ConjunctiveQuery m = ParseCq(text, pool_).value();
    Relation m1 = EvaluateCq(m, s1);
    Relation m2 = EvaluateCq(m, s2);
    // The structural fact: monotone in the images.
    EXPECT_TRUE(m1.IsSubsetOf(m2)) << text;
    // Hence cannot match Q on both sides.
    EXPECT_FALSE(m1 == q1 && m2 == q2) << text << " would rewrite Q";
  }

  // A UCQ candidate (the "obvious" attempt: V1 ∪ (V2 minus R — but minus
  // is not monotone, so the closest UCQ is V1 ∪ V2):
  UnionQuery ucq =
      ParseUcq("M(x) :- V1(x) | M(x) :- V2(x)", pool_).value();
  Relation u1 = EvaluateUcq(ucq, s1);
  Relation u2 = EvaluateUcq(ucq, s2);
  EXPECT_TRUE(u1.IsSubsetOf(u2));
  EXPECT_FALSE(u1 == q1 && u2 == q2);

  // A recursive Datalog≠ candidate.
  DatalogProgram dl =
      ParseDatalog("M(x) :- V2(x); M(x) :- V1(x), V3(y), x != y", pool_)
          .value();
  Relation d1 = dl.Query(s1, "M").value();
  Relation d2 = dl.Query(s2, "M").value();
  EXPECT_TRUE(d1.IsSubsetOf(d2));
  EXPECT_FALSE(d1 == q1 && d2 == q2);
}

TEST_F(MonotoneCompleteness, Prop58TheCorrectRewritingIsNonMonotone) {
  // The paper's Q_V: if V3 (=R) is nonempty use V1, else use V2 — genuinely
  // case-splitting on emptiness, i.e. non-monotone. Encoded as a computable
  // query, it rewrites Q exactly on both witnesses.
  NonMonotonicityFamily family = Prop58Family(pool_);
  Query qv = Query::FromFunction(
      1,
      [](const Instance& s) {
        if (!s.Get("V3").empty()) return s.Get("V1");
        return s.Get("V2");
      },
      "if V3 != {} then V1 else V2");

  for (const Instance* d :
       {&family.witness.d1, &family.witness.d2}) {
    Instance image = family.views.Apply(*d);
    EXPECT_EQ(qv.Eval(image), family.query.Eval(*d));
  }
  EXPECT_FALSE(qv.IsSyntacticallyMonotone());
}

TEST_F(MonotoneCompleteness, Prop512TheCorrectRewritingIsNonMonotone) {
  // Prop 5.12's Q_V = (V1 ∧ ¬V2) ∨ V3 — again non-monotone, again exact on
  // the witnesses.
  NonMonotonicityFamily family = Prop512Family(pool_);
  Query qv = Query::FromFunction(
      1,
      [](const Instance& s) {
        Relation result = s.Get("V1").Difference(s.Get("V2"));
        return result.Union(s.Get("V3"));
      },
      "(V1 and not V2) or V3");

  for (const Instance* d :
       {&family.witness.d1, &family.witness.d2}) {
    Instance image = family.views.Apply(*d);
    EXPECT_EQ(qv.Eval(image), family.query.Eval(*d));
  }
}

TEST_F(MonotoneCompleteness, Prop512MonotoneCandidatesFail) {
  NonMonotonicityFamily family = Prop512Family(pool_);
  const Instance& s1 = family.witness.view_image1;
  const Instance& s2 = family.witness.view_image2;
  ASSERT_TRUE(s1.IsSubInstanceOf(s2));
  Relation q1 = family.query.Eval(family.witness.d1);
  Relation q2 = family.query.Eval(family.witness.d2);
  ASSERT_FALSE(q1.IsSubsetOf(q2));

  for (const std::string text :
       {"M(x) :- V1(x)", "M(x) :- V3(x)", "M(x) :- V1(x), V2(x)"}) {
    ConjunctiveQuery m = ParseCq(text, pool_).value();
    Relation m1 = EvaluateCq(m, s1);
    Relation m2 = EvaluateCq(m, s2);
    EXPECT_TRUE(m1.IsSubsetOf(m2)) << text;
    EXPECT_FALSE(m1 == q1 && m2 == q2) << text;
  }
}

}  // namespace
}  // namespace vqdr
