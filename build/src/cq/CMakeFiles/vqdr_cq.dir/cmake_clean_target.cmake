file(REMOVE_RECURSE
  "libvqdr_cq.a"
)
