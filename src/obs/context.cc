#include "obs/context.h"

#ifndef VQDR_OBS_DISABLED

#include "guard/budget.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/watchdog.h"

namespace vqdr::obs {

namespace internal {

thread_local OpSlot* t_current_op = nullptr;

void BindOpToThread(OpSlot* op) {
  t_current_op = op;
  vqdr::obs::internal::t_op_cells = op != nullptr ? &op->cells : nullptr;
  EnsureThreadSlot()->op_id.store(op != nullptr ? op->id : 0,
                                  std::memory_order_relaxed);
}

namespace {

// Routes guard::Budget checkpoints into the bound op's heartbeat counter.
// Installed once, lazily, from the first OpScope: guard cannot link against
// obs (it sits below it), so the dependency is inverted through a function
// pointer guard exposes.
void InstallCheckpointObserver() {
  static const bool installed = [] {
    vqdr::guard::SetCheckpointObserver(
        [](std::uint64_t steps) { OpHeartbeat(steps); });
    return true;
  }();
  (void)installed;
}

// One guard check per call instead of four: the env-driven surfaces and
// the guard->obs heartbeat bridge all initialize on the first top-level
// operation of the process.
void EnsureTelemetryInit() {
  static const bool telemetry_initialized = [] {
    InstallCheckpointObserver();
    InitOpsDumpFromEnv();
    InitLogFromEnv();
    InitWatchdogFromEnv();
    return true;
  }();
  (void)telemetry_initialized;
}

}  // namespace

}  // namespace internal

OpScope::OpScope(OpKind kind, const char* label,
                 vqdr::guard::Budget* budget) {
  if (internal::t_current_op != nullptr) return;  // nested: passthrough
  internal::EnsureTelemetryInit();
  slot_ = internal::RegisterOp(kind, label, budget);
  internal::BindOpToThread(slot_.get());
  if (LogEnabled(LogLevel::kDebug)) {
    LogRecord(LogLevel::kDebug, "op.start")
        .Str("label", label)
        .Str("kind", OpKindName(kind));
  }
}

OpScope::OpScope(OpKind kind, std::string label,
                 vqdr::guard::Budget* budget) {
  if (internal::t_current_op != nullptr) return;  // nested: passthrough
  internal::EnsureTelemetryInit();
  slot_ = internal::RegisterOp(kind, std::move(label), budget);
  internal::BindOpToThread(slot_.get());
  if (LogEnabled(LogLevel::kDebug)) {
    LogRecord(LogLevel::kDebug, "op.start")
        .Str("label", slot_->label)
        .Str("kind", OpKindName(kind));
  }
}

OpScope::~OpScope() {
  if (slot_ == nullptr) return;
  // Emitted while still bound so the record carries this op's id. Gated so
  // a disabled logger skips the argument evaluation (clock read, atomic
  // loads) too, not just the formatting.
  if (LogEnabled(LogLevel::kInfo)) {
    LogRecord(LogLevel::kInfo, "op.done")
        .Str("label", slot_->label)
        .Str("kind", OpKindName(slot_->kind))
        .Num("age_us", TelemetryNowUs() - slot_->start_us)
        .Num("heartbeats", slot_->heartbeats.load(std::memory_order_relaxed))
        .Num("tasks", slot_->tasks.load(std::memory_order_relaxed));
  }
  internal::BindOpToThread(nullptr);
  internal::UnregisterOp(slot_);
}

OpTaskScope::OpTaskScope(const OpHandle& handle) : slot_(handle.slot_) {
  if (slot_ == nullptr) return;
  prev_ = internal::t_current_op;
  internal::BindOpToThread(slot_.get());
  slot_->tasks.fetch_add(1, std::memory_order_relaxed);
}

OpTaskScope::~OpTaskScope() {
  if (slot_ == nullptr) return;
  internal::BindOpToThread(prev_);
}

}  // namespace vqdr::obs

#endif  // VQDR_OBS_DISABLED
