// libFuzzer harness for the homomorphism matcher (cq/matcher.h): decodes
// the input bytes into a (query, instance, MatcherOptions) triple and runs
// the indexed engine against a reference enumeration, trapping on any
// divergence. The decoder is byte-oriented (no text parser in the loop) so
// coverage lands in the join machinery, not the grammar.
//
// Oracles, strongest available first:
//   * -DVQDR_MATCHER_LEGACY=ON builds: the legacy engine replays the same
//     search and the full match SEQUENCES must be identical (the order-
//     preservation contract of DESIGN.md §12).
//   * Plain builds: the indexed engine with every pruning rule disabled is
//     the reference — forward checking, backjumping and symmetry breaking
//     are each claimed to be order-preserving, so any toggle combination
//     must reproduce the unpruned sequence.
// In both modes every reported binding is independently checked to be a
// homomorphism (each atom's image is a fact of the instance).
//
// Built two ways by fuzz/CMakeLists.txt:
//   * fuzz_matcher (Clang + -fsanitize=fuzzer): coverage-guided run;
//   * fuzz_matcher_replay (any compiler): deterministic corpus replay for
//     CI, `fuzz_matcher_replay fuzz/corpus/matcher`.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cq/atom.h"
#include "cq/matcher.h"
#include "data/instance.h"
#include "data/schema.h"
#include "data/value.h"

namespace {

using vqdr::Atom;
using vqdr::Binding;
using vqdr::Instance;
using vqdr::MatcherEngine;
using vqdr::MatcherOptions;
using vqdr::Schema;
using vqdr::Term;
using vqdr::Tuple;
using vqdr::Value;

// The search tree is exponential in the worst case; both the input size and
// the match count are capped so a fuzzer-grown blowup times out the run
// instead of looking like a hang in the engine.
constexpr std::size_t kMaxInput = 1 << 12;
constexpr std::size_t kMaxMatches = 512;
constexpr int kMaxAtoms = 5;

const Schema& FuzzSchema() {
  static const Schema* schema = new Schema{{"E", 2}, {"P", 1}, {"T", 3}};
  return *schema;
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool Done() const { return pos >= size; }
  std::uint8_t Next() { return Done() ? 0 : data[pos++]; }
};

// Term encoding: high bit set -> constant in {1..4}, else variable from a
// pool of 6 (reuse across atoms creates joins and self-joins).
Term DecodeTerm(std::uint8_t b) {
  if (b & 0x80) return Term::Const(Value(1 + (b & 0x7f) % 4));
  return Term::Var("v" + std::to_string(b % 6));
}

std::vector<Atom> DecodeAtoms(Cursor& in) {
  int n_atoms = 1 + in.Next() % kMaxAtoms;
  std::vector<Atom> atoms;
  for (int i = 0; i < n_atoms && !in.Done(); ++i) {
    const vqdr::RelationDecl& decl =
        FuzzSchema().decls()[in.Next() % FuzzSchema().decls().size()];
    Atom atom;
    atom.predicate = decl.name;
    for (int j = 0; j < decl.arity; ++j) atom.args.push_back(DecodeTerm(in.Next()));
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

// Fact encoding: predicate selector byte, then arity value bytes over the
// domain {1..5} (overlapping the constant range so constants can hit).
Instance DecodeInstance(Cursor& in) {
  Instance db(FuzzSchema());
  while (!in.Done()) {
    const vqdr::RelationDecl& decl =
        FuzzSchema().decls()[in.Next() % FuzzSchema().decls().size()];
    Tuple fact;
    for (int j = 0; j < decl.arity; ++j) fact.push_back(Value(1 + in.Next() % 5));
    db.AddFact(decl.name, fact);
  }
  return db;
}

bool IsHomomorphism(const std::vector<Atom>& atoms, const Instance& db,
                    const Binding& binding) {
  for (const Atom& atom : atoms) {
    Tuple image;
    for (const Term& t : atom.args) {
      if (t.is_const()) {
        image.push_back(t.constant());
      } else {
        auto it = binding.find(t.var());
        if (it == binding.end()) return false;
        image.push_back(it->second);
      }
    }
    if (!db.Get(atom.predicate).Contains(image)) return false;
  }
  return true;
}

struct EnumerationResult {
  std::vector<Binding> matches;
  bool completed = false;
};

EnumerationResult Enumerate(const std::vector<Atom>& atoms, const Instance& db,
                            const MatcherOptions& options) {
  EnumerationResult result;
  result.completed = vqdr::ForEachMatch(
      atoms, db, Binding{},
      [&result](const Binding& b) {
        result.matches.push_back(b);
        return result.matches.size() < kMaxMatches;
      },
      nullptr, options);
  return result;
}

void FuzzMatcher(const std::uint8_t* data, std::size_t size) {
  Cursor in{data, size};
  std::uint8_t config = in.Next();

  std::vector<Atom> atoms = DecodeAtoms(in);
  Instance db = DecodeInstance(in);

  MatcherOptions tested;
  tested.engine = MatcherEngine::kIndexed;
  tested.forward_checking = (config & 1) != 0;
  tested.conflict_backjumping = (config & 2) != 0;
  tested.symmetry_breaking = (config & 4) != 0;
  EnumerationResult got = Enumerate(atoms, db, tested);

  for (const Binding& b : got.matches) {
    if (!IsHomomorphism(atoms, db, b)) __builtin_trap();
  }

  MatcherOptions reference;
  if (vqdr::MatcherLegacyCompiled()) {
    reference.engine = MatcherEngine::kLegacy;
  } else {
    reference.engine = MatcherEngine::kIndexed;
    reference.forward_checking = false;
    reference.conflict_backjumping = false;
    reference.symmetry_breaking = false;
  }
  EnumerationResult want = Enumerate(atoms, db, reference);

  if (got.completed != want.completed) __builtin_trap();
  if (got.matches != want.matches) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > kMaxInput) return 0;
  FuzzMatcher(data, size);
  return 0;
}
