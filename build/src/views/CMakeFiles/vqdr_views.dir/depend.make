# Empty dependencies file for vqdr_views.
# This may be replaced when dependencies are built.
