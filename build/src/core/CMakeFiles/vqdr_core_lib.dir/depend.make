# Empty dependencies file for vqdr_core_lib.
# This may be replaced when dependencies are built.
