file(REMOVE_RECURSE
  "CMakeFiles/test_so_datalog.dir/so_datalog_test.cc.o"
  "CMakeFiles/test_so_datalog.dir/so_datalog_test.cc.o.d"
  "test_so_datalog"
  "test_so_datalog.pdb"
  "test_so_datalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_so_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
