#include "reductions/order_views.h"

#include <functional>

#include "base/check.h"

namespace vqdr {

namespace {

std::vector<Term> FreshVars(int n, const std::string& prefix) {
  std::vector<Term> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(Term::Var(prefix + std::to_string(i)));
  }
  return vars;
}

// Anchors: every (relation, position) pair of σ, used to assert
// σ-membership of a variable inside UCQ¬ views.
struct Anchor {
  std::string relation;
  int arity;
  int position;
};

std::vector<Anchor> SigmaAnchors(const Schema& sigma) {
  std::vector<Anchor> anchors;
  for (const RelationDecl& d : sigma.decls()) {
    for (int i = 0; i < d.arity; ++i) {
      anchors.push_back(Anchor{d.name, d.arity, i});
    }
  }
  return anchors;
}

// An atom R(f0, …, var@pos, …) placing `var` at the anchor's position with
// fresh padding variables prefixed `pad`.
Atom AnchorAtom(const Anchor& anchor, const std::string& var,
                const std::string& pad) {
  std::vector<Term> args;
  for (int i = 0; i < anchor.arity; ++i) {
    args.push_back(i == anchor.position
                       ? Term::Var(var)
                       : Term::Var(pad + std::to_string(i)));
  }
  return Atom(anchor.relation, std::move(args));
}

// Expands `base` (a CQ¬ with unanchored variables `vars`) into the UCQ of
// all σ-anchorings of those variables.
UnionQuery AnchorAll(const ConjunctiveQuery& base,
                     const std::vector<std::string>& vars,
                     const Schema& sigma) {
  std::vector<Anchor> anchors = SigmaAnchors(sigma);
  VQDR_CHECK(!anchors.empty()) << "schema has no positions to anchor to";
  UnionQuery result;
  std::vector<int> choice(vars.size(), 0);
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == vars.size()) {
      ConjunctiveQuery disjunct = base;
      for (std::size_t j = 0; j < vars.size(); ++j) {
        disjunct.AddAtom(AnchorAtom(anchors[choice[j]], vars[j],
                                    "p" + std::to_string(j) + "_"));
      }
      result.AddDisjunct(std::move(disjunct));
      return;
    }
    for (std::size_t a = 0; a < anchors.size(); ++a) {
      choice[i] = static_cast<int>(a);
      rec(i + 1);
    }
  };
  rec(0);
  return result;
}

}  // namespace

FoPtr InSigmaFormula(const Schema& sigma, const std::string& var) {
  std::vector<FoPtr> disjuncts;
  for (const Anchor& anchor : SigmaAnchors(sigma)) {
    std::vector<std::string> quantified;
    std::vector<Term> args;
    for (int i = 0; i < anchor.arity; ++i) {
      if (i == anchor.position) {
        args.push_back(Term::Var(var));
      } else {
        std::string padded = var + "_pad" + std::to_string(i);
        quantified.push_back(padded);
        args.push_back(Term::Var(padded));
      }
    }
    disjuncts.push_back(FoFormula::Exists(
        quantified, FoFormula::MakeAtom(Atom(anchor.relation, args))));
  }
  return FoFormula::Or(std::move(disjuncts));
}

FoPtr RelativizeToSigma(const FoPtr& formula, const Schema& sigma) {
  using F = FoFormula;
  using Kind = FoFormula::Kind;
  switch (formula->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
    case Kind::kEquals:
      return formula;
    case Kind::kNot:
      return F::Not(RelativizeToSigma(formula->children()[0], sigma));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FoPtr> kids;
      for (const FoPtr& c : formula->children()) {
        kids.push_back(RelativizeToSigma(c, sigma));
      }
      return formula->kind() == Kind::kAnd ? F::And(std::move(kids))
                                           : F::Or(std::move(kids));
    }
    case Kind::kImplies:
      return F::Implies(RelativizeToSigma(formula->children()[0], sigma),
                        RelativizeToSigma(formula->children()[1], sigma));
    case Kind::kIff:
      return F::Iff(RelativizeToSigma(formula->children()[0], sigma),
                    RelativizeToSigma(formula->children()[1], sigma));
    case Kind::kExists:
    case Kind::kForall: {
      FoPtr body = RelativizeToSigma(formula->children()[0], sigma);
      std::vector<FoPtr> guards;
      for (const std::string& v : formula->quantified_vars()) {
        guards.push_back(InSigmaFormula(sigma, v));
      }
      if (formula->kind() == Kind::kExists) {
        guards.push_back(body);
        return F::Exists(formula->quantified_vars(),
                         F::And(std::move(guards)));
      }
      return F::Forall(formula->quantified_vars(),
                       F::Implies(F::And(std::move(guards)), body));
    }
  }
  VQDR_CHECK(false) << "unreachable";
  return nullptr;
}

FoPtr StrictTotalOrderOnSigma(const Schema& sigma,
                              const std::string& order_rel) {
  using F = FoFormula;
  auto lt = [&order_rel](const std::string& a, const std::string& b) {
    return F::MakeAtom(Atom(order_rel, {Term::Var(a), Term::Var(b)}));
  };
  FoPtr irreflexive = F::Forall({"x"}, F::Not(lt("x", "x")));
  FoPtr transitive =
      F::Forall({"x", "y", "z"},
                F::Implies(F::And({lt("x", "y"), lt("y", "z")}), lt("x", "z")));
  FoPtr total = F::Forall(
      {"x", "y"}, F::Implies(F::Not(F::Eq(Term::Var("x"), Term::Var("y"))),
                             F::Or({lt("x", "y"), lt("y", "x")})));
  return RelativizeToSigma(F::And({irreflexive, transitive, total}), sigma);
}

ViewSet Example32Views(const Schema& sigma, const std::string& order_rel) {
  ViewSet views;
  // Identity views on σ.
  for (const RelationDecl& d : sigma.decls()) {
    std::vector<Term> head = FreshVars(d.arity, "x");
    ConjunctiveQuery v("V_" + d.name, head);
    v.AddAtom(Atom(d.name, head));
    views.Add("V_" + d.name, Query::FromCq(v));
  }
  // R_ψ: the Boolean FO view "< is a strict total order on adom(σ)".
  FoQuery psi;
  psi.head_name = "Rpsi";
  psi.formula = StrictTotalOrderOnSigma(sigma, order_rel);
  views.Add("Rpsi", Query::FromFo(std::move(psi)));
  return views;
}

Query OrderGuardedQuery(const FoQuery& phi, const Schema& sigma,
                        const std::string& order_rel) {
  FoQuery q;
  q.head_name = "Q";
  q.free_vars = phi.free_vars;
  std::vector<FoPtr> parts{StrictTotalOrderOnSigma(sigma, order_rel)};
  // Guard the free variables, then the relativized body.
  for (const std::string& v : phi.free_vars) {
    parts.push_back(InSigmaFormula(sigma, v));
  }
  parts.push_back(RelativizeToSigma(phi.formula, sigma));
  q.formula = FoFormula::And(std::move(parts));
  return Query::FromFo(std::move(q));
}

ViewSet Prop57Views(const Schema& sigma, const std::string& order_rel) {
  ViewSet views;
  auto lt = [&order_rel](const Term& a, const Term& b) {
    return Atom(order_rel, {a, b});
  };
  Term x = Term::Var("x"), y = Term::Var("y"), z = Term::Var("z");

  // (1) symmetry violations within adom(σ): x<y ∧ y<x (covers
  // irreflexivity at x = y).
  {
    ConjunctiveQuery base("Vsym", {x, y});
    base.AddAtom(lt(x, y));
    base.AddAtom(lt(y, x));
    views.Add("Vsym", Query::FromUcq(AnchorAll(base, {"x", "y"}, sigma)));
  }
  // (2) transitivity violations within adom(σ).
  {
    ConjunctiveQuery base("Vtrans", {x, y, z});
    base.AddAtom(lt(x, y));
    base.AddAtom(lt(y, z));
    base.AddNegatedAtom(lt(x, z));
    views.Add("Vtrans",
              Query::FromUcq(AnchorAll(base, {"x", "y", "z"}, sigma)));
  }
  // (3) totality violations within one σ-relation: two positions of one
  // tuple are distinct but incomparable. The paper writes these with two
  // negated order atoms; the distinctness guard is a safe ≠.
  for (const RelationDecl& d : sigma.decls()) {
    for (int i = 0; i < d.arity; ++i) {
      for (int j = i + 1; j < d.arity; ++j) {
        std::vector<Term> args = FreshVars(d.arity, "a");
        std::string name = "Vtot_" + d.name + "_" + std::to_string(i) + "_" +
                           std::to_string(j);
        ConjunctiveQuery v(name, args);
        v.AddAtom(Atom(d.name, args));
        v.AddNegatedAtom(lt(args[i], args[j]));
        v.AddNegatedAtom(lt(args[j], args[i]));
        v.AddDisequality(args[i], args[j]);
        views.Add(name, Query::FromCq(v));
      }
    }
  }
  // (4) totality violations across two σ-relations (or two tuples of one).
  for (const RelationDecl& d1 : sigma.decls()) {
    for (const RelationDecl& d2 : sigma.decls()) {
      for (int i = 0; i < d1.arity; ++i) {
        for (int j = 0; j < d2.arity; ++j) {
          std::vector<Term> args1 = FreshVars(d1.arity, "b");
          std::vector<Term> args2 = FreshVars(d2.arity, "c");
          std::string name = "Vtotx_" + d1.name + std::to_string(i) + "_" +
                             d2.name + std::to_string(j);
          std::vector<Term> head = args1;
          head.insert(head.end(), args2.begin(), args2.end());
          ConjunctiveQuery v(name, head);
          v.AddAtom(Atom(d1.name, args1));
          v.AddAtom(Atom(d2.name, args2));
          v.AddNegatedAtom(lt(args1[i], args2[j]));
          v.AddNegatedAtom(lt(args2[j], args1[i]));
          v.AddDisequality(args1[i], args2[j]);
          views.Add(name, Query::FromCq(v));
        }
      }
    }
  }
  // (5) identity views on σ.
  for (const RelationDecl& d : sigma.decls()) {
    std::vector<Term> head = FreshVars(d.arity, "x");
    ConjunctiveQuery v("V_" + d.name, head);
    v.AddAtom(Atom(d.name, head));
    views.Add("V_" + d.name, Query::FromCq(v));
  }
  return views;
}

}  // namespace vqdr
