file(REMOVE_RECURSE
  "CMakeFiles/vqdr_views.dir/query.cc.o"
  "CMakeFiles/vqdr_views.dir/query.cc.o.d"
  "CMakeFiles/vqdr_views.dir/view_set.cc.o"
  "CMakeFiles/vqdr_views.dir/view_set.cc.o.d"
  "libvqdr_views.a"
  "libvqdr_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
