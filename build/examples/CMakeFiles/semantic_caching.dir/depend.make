# Empty dependencies file for semantic_caching.
# This may be replaced when dependencies are built.
