#ifndef VQDR_CQ_CONTAINMENT_H_
#define VQDR_CQ_CONTAINMENT_H_

#include <cstdint>

#include "cq/conjunctive_query.h"
#include "cq/matcher.h"
#include "cq/ucq.h"
#include "guard/budget.h"
#include "memo/memo.h"
#include "obs/explain.h"

namespace vqdr {

/// Options for the containment tests.
struct CqContainmentOptions {
  /// Worker count for the identification-pattern sweep that CQ(≠)
  /// containment performs: 1 = the original serial sweep, 0 =
  /// par::DefaultThreads(), N > 1 = fan the patterns across a work-stealing
  /// pool with early exit on the first witness of non-containment. The
  /// verdict is identical at every thread count (it is a conjunction over
  /// patterns, so order cannot matter). Pure CQs have a single canonical
  /// database and never fan out.
  int threads = 1;

  /// Optional resource budget: one step per identification pattern, plus a
  /// poll per matcher backtracking node inside each pattern check. Only the
  /// *Governed entry points honour it; the bool APIs require completion.
  guard::Budget* budget = nullptr;

  /// Result memoization policy. Containment verdicts are booleans —
  /// invariant under query isomorphism — so they are cached under the
  /// canonical fingerprints of both sides; queries without a fingerprint
  /// (negation, canonicalization over budget) bypass the cache, and
  /// governed sweeps install only kComplete verdicts (witnesses of
  /// non-containment count: they are definitive). See DESIGN.md §9.
  memo::MemoOptions memo;

  /// Homomorphism-engine selection for every canonical-database check the
  /// sweep performs (DESIGN.md §12). The default routes through the process
  /// default engine; the differential battery pins kLegacy vs kIndexed here
  /// to compare verdicts end to end.
  MatcherOptions matcher;

  /// Optional decision-provenance sink (DESIGN.md §10). When non-null and
  /// VQDR_OBS is compiled in, every pattern check appends an event: a
  /// kWitness with the replayable homomorphism when the pattern passed, a
  /// kRefutation carrying the canonical database when it failed, plus kMemo
  /// events for cache probes. Appends are internally synchronized, so
  /// parallel sweeps share the log safely. The artifact grows with the
  /// identification-pattern count — attach it to targeted checks, not bulk
  /// batteries.
  obs::ExplainLog* explain = nullptr;
};

/// Result of a governed containment test.
struct ContainmentResult {
  /// The verdict. Trustworthy in two cases: outcome == kComplete (the sweep
  /// covered every pattern), or contained == false with any outcome (a
  /// witness of non-containment was found before the stop — witnesses are
  /// definitive). A budget-stopped sweep with no witness reports
  /// contained == true only as "no witness found so far".
  bool contained = true;

  /// kComplete, or why the sweep stopped early.
  guard::Outcome outcome = guard::Outcome::kComplete;

  /// Identification patterns actually checked.
  std::uint64_t patterns_checked = 0;
};

/// Q1 ⊆ Q2 for conjunctive queries (the Chandra–Merlin canonical-instance
/// test [9]). Handles constants and disequalities exactly: with ≠ present,
/// all variable-identification patterns of Q1 consistent with its
/// disequalities are checked (the classical complete test; exponential in
/// the number of variables of Q1). Negation is not supported (aborts).
///
/// For (U)CQ(≠), finite and unrestricted containment coincide, so a single
/// routine serves both settings.
bool CqContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);
bool CqContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const CqContainmentOptions& options);

/// Governed CQ(≠) containment: honours options.budget and reports a
/// structured outcome instead of requiring the sweep to finish.
ContainmentResult CqContainedInGoverned(const ConjunctiveQuery& q1,
                                        const ConjunctiveQuery& q2,
                                        const CqContainmentOptions& options);

/// Q1 ≡ Q2 (containment both ways).
bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// UCQ containment (Sagiv–Yannakakis): Q1 ⊆ Q2 iff every canonical instance
/// of every disjunct of Q1 satisfies Q2.
bool UcqContainedIn(const UnionQuery& q1, const UnionQuery& q2);
bool UcqContainedIn(const UnionQuery& q1, const UnionQuery& q2,
                    const CqContainmentOptions& options);

/// Governed UCQ containment; see CqContainedInGoverned.
ContainmentResult UcqContainedInGoverned(const UnionQuery& q1,
                                         const UnionQuery& q2,
                                         const CqContainmentOptions& options);

/// UCQ equivalence.
bool UcqEquivalent(const UnionQuery& q1, const UnionQuery& q2);

/// True if the (pure or ≠-extended) CQ is satisfiable, i.e. has a nonempty
/// answer on some instance.
bool CqSatisfiable(const ConjunctiveQuery& q);

}  // namespace vqdr

#endif  // VQDR_CQ_CONTAINMENT_H_
