// Differential testing of the production matcher against a deliberately
// naive reference evaluator: every assignment of the query's variables over
// the active domain is tried, with no join ordering and no pruning. The
// two must agree on all inputs — the strongest guard against subtle
// matcher bugs (binding leaks, atom-ordering interactions, constant
// handling).

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "cq/matcher.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"

namespace vqdr {
namespace {

// The reference evaluator: full cross-product over adom per variable.
Relation NaiveEvaluate(const ConjunctiveQuery& q, const Instance& db) {
  bool satisfiable = true;
  ConjunctiveQuery n = q.PropagateEqualities(&satisfiable);
  Relation result(q.head_arity());
  if (!satisfiable) return result;

  std::set<Value> adom_set = db.ActiveDomain();
  for (Value c : n.Constants()) adom_set.insert(c);
  std::vector<Value> adom(adom_set.begin(), adom_set.end());
  std::vector<std::string> vars = n.AllVariables();
  if (adom.empty() && !vars.empty()) return result;

  std::map<std::string, Value> binding;
  auto resolve = [&](const Term& t) {
    return t.is_const() ? t.constant() : binding.at(t.var());
  };
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == vars.size()) {
      for (const Atom& a : n.atoms()) {
        Tuple ground;
        for (const Term& t : a.args) ground.push_back(resolve(t));
        if (!db.schema().Contains(a.predicate) ||
            !db.HasFact(a.predicate, ground)) {
          return;
        }
      }
      for (const Atom& a : n.negated_atoms()) {
        if (!db.schema().Contains(a.predicate)) continue;
        Tuple ground;
        for (const Term& t : a.args) ground.push_back(resolve(t));
        if (db.HasFact(a.predicate, ground)) return;
      }
      for (const TermComparison& c : n.disequalities()) {
        if (resolve(c.lhs) == resolve(c.rhs)) return;
      }
      Tuple answer;
      for (const Term& t : n.head_terms()) answer.push_back(resolve(t));
      result.Insert(answer);
      return;
    }
    for (Value v : adom) {
      binding[vars[i]] = v;
      rec(i + 1);
    }
    binding.erase(vars[i]);
  };
  rec(0);
  return result;
}

class MatcherCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, MatcherCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST_P(MatcherCrossCheck, PureCqAgreesWithNaive) {
  Rng rng(GetParam());
  RandomCqOptions options;
  options.max_atoms = 3;
  options.variable_pool = 3;
  options.head_arity = static_cast<int>(rng.Below(3));
  ConjunctiveQuery q = RandomCq(rng, options);
  if (!q.IsSafe()) GTEST_SKIP();

  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  iopts.tuples_per_relation = 6;
  for (int round = 0; round < 3; ++round) {
    Instance d = RandomInstance(options.schema, rng, iopts);
    EXPECT_EQ(EvaluateCq(q, d), NaiveEvaluate(q, d))
        << q.ToString() << "\n"
        << d.ToString();
  }
}

TEST_P(MatcherCrossCheck, ExtendedCqAgreesWithNaive) {
  // Randomly sprinkle disequalities and negated atoms onto a random CQ.
  Rng rng(GetParam() + 1000);
  RandomCqOptions options;
  options.max_atoms = 2;
  options.variable_pool = 3;
  ConjunctiveQuery base = RandomCq(rng, options);
  if (!base.IsSafe() || base.atoms().empty()) GTEST_SKIP();

  ConjunctiveQuery q = base;
  std::vector<std::string> vars = base.AllVariables();
  if (vars.size() >= 2 && rng.Chance(1, 2)) {
    q.AddDisequality(Term::Var(vars[0]), Term::Var(vars[1]));
  }
  if (!vars.empty() && rng.Chance(1, 2)) {
    q.AddNegatedAtom(Atom("P", {Term::Var(vars[rng.Below(vars.size())])}));
  }
  if (vars.size() >= 2 && rng.Chance(1, 3)) {
    q.AddEquality(Term::Var(vars[vars.size() - 1]), Term::Var(vars[0]));
  }
  if (!q.IsSafe()) GTEST_SKIP();

  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  for (int round = 0; round < 3; ++round) {
    Instance d = RandomInstance(options.schema, rng, iopts);
    EXPECT_EQ(EvaluateCq(q, d), NaiveEvaluate(q, d))
        << q.ToString() << "\n"
        << d.ToString();
  }
}

TEST_P(MatcherCrossCheck, CqAnswerContainsAgreesWithFullEvaluation) {
  Rng rng(GetParam() + 2000);
  RandomCqOptions options;
  options.head_arity = 1;
  ConjunctiveQuery q = RandomCq(rng, options);
  if (!q.IsSafe()) GTEST_SKIP();
  RandomInstanceOptions iopts;
  iopts.domain_size = 4;
  Instance d = RandomInstance(options.schema, rng, iopts);
  Relation full = EvaluateCq(q, d);
  for (Value v : d.ActiveDomain()) {
    EXPECT_EQ(CqAnswerContains(q, d, Tuple{v}), full.Contains(Tuple{v}));
  }
}

}  // namespace
}  // namespace vqdr
