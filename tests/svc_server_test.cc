// End-to-end transport tests (svc/server.h + svc/client.h): real Unix
// sockets, real frames. Covers the per-connection robustness contract —
// malformed-frame recovery, oversize-frame resync, idle timeout — plus
// drain-then-exit shutdown semantics and socket-path hygiene.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "obs/json.h"
#include "svc/client.h"
#include "svc/proto.h"
#include "svc/server.h"
#include "svc/service.h"

namespace vqdr::svc {
namespace {

// Per-call response ceiling: generous for sanitizer builds, finite so a
// server bug reads as a test failure instead of a hang.
constexpr std::uint64_t kCallTimeoutMs = 60000;

std::string UniqueSocketPath() {
  static int counter = 0;
  return "/tmp/vqdr_svc_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(++counter) + ".sock";
}

std::optional<obs::json::Value> MustJson(const std::string& text) {
  std::string error;
  std::optional<obs::json::Value> v = obs::json::Parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error << " in: " << text;
  return v;
}

class SvcServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    if (options.socket_path.empty()) options.socket_path = UniqueSocketPath();
    ServiceOptions service_options;
    service_options.threads = 2;
    service_ = std::make_unique<Service>(service_options);
    server_ = std::make_unique<Server>(*service_, options);
    ASSERT_TRUE(server_->Start().ok());
    socket_path_ = server_->socket_path();
  }

  Client MustConnect() {
    StatusOr<Client> client = Client::Connect(socket_path_);
    EXPECT_TRUE(client.ok()) << client.status().message();
    return std::move(client).value();
  }

  std::string MustCall(Client& client, const std::string& request) {
    StatusOr<std::string> response = client.Call(request, kCallTimeoutMs);
    EXPECT_TRUE(response.ok()) << response.status().message();
    return response.ok() ? response.value() : std::string();
  }

  std::unique_ptr<Service> service_;
  std::unique_ptr<Server> server_;
  std::string socket_path_;
};

TEST_F(SvcServerTest, EndToEndRequestResponse) {
  StartServer();
  Client client = MustConnect();

  std::string line = MustCall(
      client,
      "{\"op\":\"determinacy\",\"id\":1,\"schema\":\"R/2\","
      "\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"}");
  std::optional<obs::json::Value> v = MustJson(line);
  ASSERT_TRUE(v.has_value());
  const obs::json::Value* ok = v->Find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->bool_value);
  EXPECT_EQ(v->StringOr("outcome", ""), "COMPLETE");
  EXPECT_EQ(v->IntOr("id", -1), 1);

  // Several requests on one connection, answered in order.
  for (int i = 0; i < 5; ++i) {
    std::string health = MustCall(client, "{\"op\":\"health\"}");
    EXPECT_NE(health.find("\"ok\":true"), std::string::npos) << health;
  }
  EXPECT_GE(server_->connections_accepted(), 1u);
}

TEST_F(SvcServerTest, MalformedFrameGetsBadRequestConnectionSurvives) {
  StartServer();
  Client client = MustConnect();

  std::string rejection = MustCall(client, "this is not json");
  std::optional<obs::json::Value> v = MustJson(rejection);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->StringOr("code", ""), "bad_request");

  // Recovery, not teardown: the same connection still serves.
  std::string health = MustCall(client, "{\"op\":\"health\"}");
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
}

TEST_F(SvcServerTest, OversizeFrameRejectedThenResynced) {
  StartServer();
  Client client = MustConnect();

  // One hostile frame past the 1 MiB cap: exactly one structured rejection,
  // input discarded to the newline, connection intact.
  std::string huge(kMaxRequestBytes + 1024, 'x');
  std::string rejection = MustCall(client, huge);
  std::optional<obs::json::Value> v = MustJson(rejection);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->StringOr("code", ""), "frame_too_large");

  std::string health = MustCall(client, "{\"op\":\"health\"}");
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
}

TEST_F(SvcServerTest, BlankAndCrlfFramesAreSkipped) {
  StartServer();
  Client client = MustConnect();

  // The embedded newline makes two frames: an empty one (skipped, no
  // response) and the health request (answered) — so Call's single read
  // maps to the health response.
  std::string health = MustCall(client, "\r\n{\"op\":\"health\"}");
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
}

TEST_F(SvcServerTest, IdleConnectionIsClosed) {
  ServerOptions options;
  options.idle_timeout_ms = 150;
  StartServer(options);
  Client client = MustConnect();

  // Past the idle timeout the server has closed its end; the next call
  // fails with a transport error instead of hanging.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  StatusOr<std::string> response =
      client.Call("{\"op\":\"health\"}", kCallTimeoutMs);
  EXPECT_FALSE(response.ok());

  // A fresh connection works: the timeout is per-connection policy.
  Client again = MustConnect();
  std::string health = MustCall(again, "{\"op\":\"health\"}");
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
}

TEST_F(SvcServerTest, ShutdownDrainsAndUnlinksSocket) {
  StartServer();
  {
    Client client = MustConnect();
    std::string health = MustCall(client, "{\"op\":\"health\"}");
    EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
  }

  server_->Shutdown();
  EXPECT_TRUE(service_->draining());
  EXPECT_EQ(service_->in_flight(), 0u);

  // The socket path is gone and no longer accepts connections.
  struct stat st{};
  EXPECT_NE(::stat(socket_path_.c_str(), &st), 0);
  EXPECT_FALSE(Client::Connect(socket_path_).ok());

  server_->Shutdown();  // idempotent
}

TEST_F(SvcServerTest, StartRejectsBadPaths) {
  ServiceOptions service_options;
  service_options.threads = 1;
  Service service(service_options);
  {
    Server server(service, ServerOptions{});  // empty socket_path
    EXPECT_FALSE(server.Start().ok());
  }
  {
    ServerOptions options;
    options.socket_path = "/tmp/" + std::string(200, 'x') + ".sock";
    Server server(service, options);
    EXPECT_FALSE(server.Start().ok());
  }
}

}  // namespace
}  // namespace vqdr::svc
