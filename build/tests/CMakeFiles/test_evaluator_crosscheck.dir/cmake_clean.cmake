file(REMOVE_RECURSE
  "CMakeFiles/test_evaluator_crosscheck.dir/evaluator_crosscheck_test.cc.o"
  "CMakeFiles/test_evaluator_crosscheck.dir/evaluator_crosscheck_test.cc.o.d"
  "test_evaluator_crosscheck"
  "test_evaluator_crosscheck.pdb"
  "test_evaluator_crosscheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluator_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
