file(REMOVE_RECURSE
  "CMakeFiles/vqdr_datalog.dir/program.cc.o"
  "CMakeFiles/vqdr_datalog.dir/program.cc.o.d"
  "libvqdr_datalog.a"
  "libvqdr_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqdr_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
