// E-3.2 / E-5.7: the order-view constructions — order-invariance checking
// (factorially many orders), the Example 3.2 FO views versus the
// Proposition 5.7 UCQ¬ views, and the guarded query. The shape to
// observe: invariance checking hits the |adom|! wall; the CQ¬ views are
// cheap to apply while the FO ψ̂-view pays quantifier depth.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "fo/order_invariance.h"
#include "fo/parser.h"
#include "gen/workloads.h"
#include "reductions/order_views.h"

namespace vqdr {
namespace {

Instance Pdb(int n) {
  Instance d(Schema{{"P", 1}});
  for (int i = 1; i <= n; ++i) d.AddFact("P", Tuple{Value(i)});
  return d;
}

void BM_OrderInvarianceCheck(benchmark::State& state) {
  NamePool pool;
  FoQuery q = ParseFoQuery("Q() := exists x, y . Lt(x, y)", pool).value();
  Instance d = Pdb(static_cast<int>(state.range(0)));
  std::size_t orders = 0;
  for (auto _ : state) {
    OrderInvarianceResult result = CheckOrderInvariance(q, d, "Lt");
    orders = result.orders_checked;
    benchmark::DoNotOptimize(result);
  }
  state.counters["orders"] = static_cast<double>(orders);
}
BENCHMARK(BM_OrderInvarianceCheck)->DenseRange(2, 6)
    ->Unit(benchmark::kMicrosecond);

Instance OrderedPdb(int n) {
  Instance d(Schema{{"P", 1}, {"Lt", 2}});
  for (int i = 1; i <= n; ++i) {
    d.AddFact("P", Tuple{Value(i)});
    for (int j = i + 1; j <= n; ++j) {
      d.AddFact("Lt", Tuple{Value(i), Value(j)});
    }
  }
  return d;
}

void BM_Example32ViewApplication(benchmark::State& state) {
  Schema sigma{{"P", 1}};
  ViewSet views = Example32Views(sigma, "Lt");
  Instance d = OrderedPdb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(views.Apply(d));
  }
}
BENCHMARK(BM_Example32ViewApplication)->DenseRange(2, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_Prop57ViewApplication(benchmark::State& state) {
  Schema sigma{{"P", 1}};
  ViewSet views = Prop57Views(sigma, "Lt");
  Instance d = OrderedPdb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(views.Apply(d));
  }
  state.counters["view_count"] = static_cast<double>(views.size());
}
BENCHMARK(BM_Prop57ViewApplication)->DenseRange(2, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_OrderGuardedQueryEval(benchmark::State& state) {
  NamePool pool;
  Schema sigma{{"P", 1}};
  FoQuery phi;
  phi.formula = ParseFo("exists x, y . Lt(x, y)", pool).value();
  Query q = OrderGuardedQuery(phi, sigma, "Lt");
  Instance d = OrderedPdb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Eval(d));
  }
}
BENCHMARK(BM_OrderGuardedQueryEval)->DenseRange(2, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("order_invariance");
