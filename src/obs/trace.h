#ifndef VQDR_OBS_TRACE_H_
#define VQDR_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

// Scoped tracing for the solver stack. A span covers one phase of work
// (a chase level, a containment check, a whole analysis battery):
//
//   VQDR_TRACE_SPAN("chase.level", k);
//
// times the rest of the enclosing scope against the monotonic clock.
// Completed spans land in a fixed-size in-process ring buffer and, when a
// JSONL sink is configured, are appended to it as one JSON object per line:
//
//   {"name":"chase.level","arg":2,"start_us":123,"dur_us":45,"tid":1,"depth":1}
//
// Spans are written on *completion*, so inner spans appear before the outer
// span that contains them — readers reconstruct nesting from (tid, depth);
// depth alone is ambiguous once `par` workers interleave in the merged ring.
//
// The sink is selected with the VQDR_TRACE environment variable
// (VQDR_TRACE=/tmp/trace.jsonl ./determinacy_tool ...) or programmatically
// via SetTraceSinkPath. With neither configured and EnableTracing not
// called, a span construction is a single relaxed atomic load.

namespace vqdr::obs {

/// A completed span.
struct TraceEvent {
  std::string name;
  std::int64_t arg = 0;
  bool has_arg = false;
  /// Microseconds since the process trace epoch (first tracing activity).
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  /// Stable per-thread id, assigned 1,2,... the first time a thread records
  /// a span. Not the OS thread id: small, dense, and deterministic enough
  /// for profile/Chrome-trace grouping.
  std::uint32_t tid = 0;
  /// 0 for top-level spans, +1 per enclosing live span (per thread).
  int depth = 0;
  /// Id of the in-flight operation (obs/context.h) the recording thread was
  /// bound to, or 0. Joins spans against the op registry and the log.
  std::uint64_t op = 0;
};

/// True when spans are being recorded (ring buffer and/or sink).
bool TracingEnabled();

/// Starts recording spans into the ring buffer (no file sink).
void EnableTracing();

/// Stops recording. An open sink is flushed and closed.
void DisableTracing();

/// Opens (truncating) a JSONL sink at `path` and enables tracing. Returns
/// false if the file cannot be opened (tracing state is unchanged).
bool SetTraceSinkPath(const std::string& path);

/// Flushes and closes the sink; ring-buffer recording continues if enabled.
void CloseTraceSink();

/// Removes and returns every buffered event, oldest first. The ring holds
/// the most recent kTraceRingCapacity events; older ones are dropped.
std::vector<TraceEvent> DrainTraceEvents();

inline constexpr std::size_t kTraceRingCapacity = 4096;

/// The calling thread's trace tid, assigning one if it has none yet.
std::uint32_t CurrentTraceTid();

/// RAII span. Use through VQDR_TRACE_SPAN; construct directly only when the
/// macro seam is unavailable. `name` must outlive the span (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, std::int64_t arg);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin();
  void LiveBegin();
  void LiveEnd();

  const char* name_;
  std::int64_t arg_ = 0;
  bool has_arg_ = false;
  bool active_ = false;
  /// True when this span published itself to the live telemetry layer (an
  /// operation was bound at construction): thread span stack + op phase.
  /// Independent of active_ — live bookkeeping runs even with tracing off.
  bool live_ = false;
  int depth_ = 0;
  std::uint64_t start_us_ = 0;
};

}  // namespace vqdr::obs

#include "obs/obs_macros.h"

#endif  // VQDR_OBS_TRACE_H_
