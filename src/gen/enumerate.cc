#include "gen/enumerate.h"

#include <set>
#include <string>
#include <vector>

#include "base/check.h"
#include "data/isomorphism.h"

namespace vqdr {

namespace {

// All tuples of the given arity over `universe`.
std::vector<Tuple> UniverseTuples(int arity, const std::vector<Value>& universe) {
  std::vector<Tuple> result;
  if (arity == 0) {
    result.push_back(Tuple{});
    return result;
  }
  Tuple current(arity);
  std::function<void(int)> rec = [&](int pos) {
    if (pos == arity) {
      result.push_back(current);
      return;
    }
    for (Value v : universe) {
      current[pos] = v;
      rec(pos + 1);
    }
  };
  rec(0);
  return result;
}

}  // namespace

EnumerationOutcome ForEachInstanceOver(
    const Schema& schema, const std::vector<Value>& universe,
    std::uint64_t max_instances,
    const std::function<bool(const Instance&)>& body) {
  EnumerationOutcome outcome;

  std::vector<std::vector<Tuple>> pools;
  for (const RelationDecl& d : schema.decls()) {
    pools.push_back(UniverseTuples(d.arity, universe));
    if (pools.back().size() >= 63u) {
      // 2^63+ candidate relations: the space is not enumerable. Report an
      // incomplete (empty) sweep instead of aborting, so budgeted callers
      // degrade gracefully.
      outcome.complete = false;
      return outcome;
    }
  }

  Instance current(schema);
  std::function<bool(std::size_t)> rec = [&](std::size_t i) -> bool {
    if (i == pools.size()) {
      ++outcome.visited;
      if (outcome.visited > max_instances) {
        outcome.complete = false;
        return false;
      }
      return body(current);
    }
    std::uint64_t subsets = 1ull << pools[i].size();
    const std::string& name = schema.decls()[i].name;
    for (std::uint64_t mask = 0; mask < subsets; ++mask) {
      Relation rel(schema.decls()[i].arity);
      for (std::size_t t = 0; t < pools[i].size(); ++t) {
        if (mask & (1ull << t)) rel.Insert(pools[i][t]);
      }
      current.Set(name, std::move(rel));
      if (!rec(i + 1)) return false;
    }
    return true;
  };
  rec(0);
  return outcome;
}

EnumerationOutcome ForEachInstance(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body) {
  std::vector<Value> universe;
  for (int v = 1; v <= options.domain_size; ++v) universe.push_back(Value(v));
  return ForEachInstanceOver(schema, universe, options.max_instances, body);
}

EnumerationOutcome ForEachInstanceUpToIso(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body) {
  std::set<std::string> seen;
  return ForEachInstance(schema, options, [&](const Instance& d) {
    if (!seen.insert(CanonicalKey(d)).second) return true;
    return body(d);
  });
}

}  // namespace vqdr
