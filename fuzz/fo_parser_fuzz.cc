// libFuzzer harness for the first-order parsers (fo/parser.h): ParseFo and
// ParseFoQuery must reject arbitrary bytes with a Status, never a crash.
// Accepted formulas round-trip through Formula::ToString — the printed form
// must re-parse (the printer emits fully-parenthesized text, so equality of
// a second print is also required).
//
// See cq_parser_fuzz.cc for how the two build modes work.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fo/formula.h"
#include "fo/parser.h"

namespace {

// The FO grammar is recursive-descent: deeply nested input is legal but a
// stack hazard at fuzzer-scale sizes, so bound the input like the CQ
// harness does.
constexpr std::size_t kMaxInput = 1 << 12;

void FuzzFo(std::string_view text) {
  vqdr::NamePool pool;
  vqdr::StatusOr<vqdr::FoPtr> f = vqdr::ParseFo(text, pool);
  if (!f.ok()) return;
  std::string printed = f.value()->ToString();
  vqdr::StatusOr<vqdr::FoPtr> again = vqdr::ParseFo(printed, pool);
  if (!again.ok()) __builtin_trap();  // printer emitted unparseable text
  if (again.value()->ToString() != printed) __builtin_trap();
}

void FuzzFoQuery(std::string_view text) {
  vqdr::NamePool pool;
  vqdr::StatusOr<vqdr::FoQuery> q = vqdr::ParseFoQuery(text, pool);
  if (!q.ok()) return;
  std::string printed = q.value().ToString();
  vqdr::StatusOr<vqdr::FoQuery> again = vqdr::ParseFoQuery(printed, pool);
  if (!again.ok()) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > kMaxInput) return 0;
  std::string_view text(reinterpret_cast<const char*>(data + 1), size - 1);
  if (data[0] % 2 == 0) {
    FuzzFo(text);
  } else {
    FuzzFoQuery(text);
  }
  return 0;
}
