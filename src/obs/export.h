#ifndef VQDR_OBS_EXPORT_H_
#define VQDR_OBS_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

// Export surfaces for external tooling:
//
//  * ExportPrometheusText renders a MetricsSnapshot in the Prometheus text
//    exposition format (version 0.0.4) — counters as `_total` counters,
//    histograms as cumulative `_bucket{le=...}` series from the fixed log2
//    buckets plus `_sum`/`_count`. This is the future body of the
//    `vqdr-serve` /metrics endpoint (ROADMAP item 1).
//
//  * ChromeTraceJson / ConvertTraceJsonlToChrome turn completed spans (or a
//    whole JSONL sink file) into the Chrome trace_event format, loadable in
//    Perfetto / chrome://tracing, with one track per trace tid.

namespace vqdr::obs {

/// Prometheus text exposition of a snapshot. Metric names are sanitized
/// (`cq.hom.attempts` -> `vqdr_cq_hom_attempts_total`); each family gets
/// HELP (carrying the original dotted name) and TYPE lines. Deterministic.
std::string ExportPrometheusText(const MetricsSnapshot& snapshot);

/// Convenience: snapshots the live registry and exports it.
std::string ExportPrometheusText();

/// Chrome trace_event JSON for a batch of completed spans: complete ("X")
/// events with ts/dur in microseconds, one pid, tid taken from the span.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Reads a JSONL sink stream (as written by SetTraceSinkPath) and writes
/// the Chrome trace_event document. Returns false (with *error set, if
/// given) on malformed input; nothing is written in that case.
bool ConvertTraceJsonlToChrome(std::istream& in, std::ostream& out,
                               std::string* error = nullptr);

}  // namespace vqdr::obs

#endif  // VQDR_OBS_EXPORT_H_
