#include "data/serialize.h"

#include <string>
#include <utility>

namespace vqdr {

namespace {

// Generous structural bound; engine schemas stay tiny, and the decoder must
// reject a forged arity before multiplying it into allocation sizes.
constexpr std::uint64_t kMaxArity = 4096;

}  // namespace

void EncodeSchema(const Schema& schema, wire::Encoder& enc) {
  enc.U64(schema.decls().size());
  for (const RelationDecl& decl : schema.decls()) {
    enc.Str(decl.name);
    enc.U32(static_cast<std::uint32_t>(decl.arity));
  }
}

bool DecodeSchema(wire::Decoder& dec, Schema* out) {
  std::uint64_t count = dec.U64();
  if (!dec.CheckCount(count, 12)) return false;
  Schema schema;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = dec.Str();
    std::uint32_t arity = dec.U32();
    if (!dec.ok() || name.empty() || arity > kMaxArity) return false;
    // Schema::Add aborts on a duplicate with a different arity; a snapshot
    // payload must fail the decode instead.
    if (schema.Contains(name)) return false;
    schema.Add(name, static_cast<int>(arity));
  }
  *out = std::move(schema);
  return true;
}

void EncodeTuple(const Tuple& tuple, wire::Encoder& enc) {
  enc.U64(tuple.size());
  for (Value v : tuple) enc.I64(v.id);
}

bool DecodeTuple(wire::Decoder& dec, Tuple* out) {
  std::uint64_t size = dec.U64();
  if (!dec.CheckCount(size, 8) || size > kMaxArity) return false;
  Tuple tuple;
  tuple.reserve(static_cast<std::size_t>(size));
  for (std::uint64_t i = 0; i < size; ++i) tuple.push_back(Value(dec.I64()));
  if (!dec.ok()) return false;
  *out = std::move(tuple);
  return true;
}

void EncodeInstance(const Instance& instance, wire::Encoder& enc) {
  EncodeSchema(instance.schema(), enc);
  std::uint64_t populated = 0;
  for (const RelationDecl& decl : instance.schema().decls()) {
    if (!instance.Get(decl.name).empty()) ++populated;
  }
  enc.U64(populated);
  for (const RelationDecl& decl : instance.schema().decls()) {
    const Relation& rel = instance.Get(decl.name);
    if (rel.empty()) continue;
    enc.Str(decl.name);
    enc.U64(rel.size());
    // Tuples share the relation arity, so values are written flat.
    for (const Tuple& tuple : rel.tuples()) {
      for (Value v : tuple) enc.I64(v.id);
    }
  }
}

bool DecodeInstance(wire::Decoder& dec, Instance* out) {
  Schema schema;
  if (!DecodeSchema(dec, &schema)) return false;
  Instance instance(schema);
  std::uint64_t relations = dec.U64();
  if (!dec.CheckCount(relations, 16)) return false;
  for (std::uint64_t r = 0; r < relations; ++r) {
    std::string name = dec.Str();
    std::uint64_t tuples = dec.U64();
    if (!dec.ok()) return false;
    std::optional<int> arity = schema.ArityOf(name);
    if (!arity.has_value()) return false;
    std::size_t width = static_cast<std::size_t>(*arity);
    if (!dec.CheckCount(tuples, width * 8)) return false;
    for (std::uint64_t t = 0; t < tuples; ++t) {
      Tuple tuple;
      tuple.reserve(width);
      for (std::size_t i = 0; i < width; ++i) {
        tuple.push_back(Value(dec.I64()));
      }
      if (!dec.ok()) return false;
      instance.AddFact(name, tuple);
    }
  }
  *out = std::move(instance);
  return true;
}

}  // namespace vqdr
