// Substrate benchmark: CQ/UCQ containment (Chandra–Merlin / Sagiv–
// Yannakakis) and core minimisation — the NP-complete engine everything
// else calls into. The shape to observe: chain-into-chain containment is
// polynomial in practice (pruned backtracking), disequality patterns pay
// the Bell-number factor, minimisation is quadratic in atoms times a
// containment call.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "cq/containment.h"
#include "cq/minimize.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

void BM_CqContainmentChains(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery longer = ChainQuery(2 * n);
  ConjunctiveQuery shorter = ChainQuery(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedIn(longer, shorter));
  }
  state.counters["atoms"] = static_cast<double>(2 * n);
}
BENCHMARK(BM_CqContainmentChains)->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_CqContainmentCycles(benchmark::State& state) {
  // Cycle-into-cycle: divisibility structure, harder hom search.
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery big = CycleQuery(2 * n);
  ConjunctiveQuery small = CycleQuery(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedIn(big, small));
  }
}
BENCHMARK(BM_CqContainmentCycles)->DenseRange(2, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_CqContainmentWithDisequality(benchmark::State& state) {
  // The Bell-number blowup: q1 pure with k variables, q2 with one ≠.
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery q1 = ChainQuery(n);
  ConjunctiveQuery q2 = ChainQuery(n);
  q2.AddDisequality(Term::Var("x0"), Term::Var("x" + std::to_string(n)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CqContainedIn(q1, q2));
  }
  state.counters["vars"] = static_cast<double>(n + 1);
}
BENCHMARK(BM_CqContainmentWithDisequality)->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_MinimizeStar(benchmark::State& state) {
  // All arms of a star are redundant: n-1 successful removals.
  ConjunctiveQuery q = StarQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimizeCq(q));
  }
}
BENCHMARK(BM_MinimizeStar)->DenseRange(2, 8)->Unit(benchmark::kMicrosecond);

void BM_MinimizeIrreducibleChain(benchmark::State& state) {
  // Nothing removable: n failed removal attempts.
  ConjunctiveQuery q = ChainQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimizeCq(q));
  }
}
BENCHMARK(BM_MinimizeIrreducibleChain)->DenseRange(2, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_UcqContainment(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  UnionQuery left, right;
  for (int i = 1; i <= n; ++i) {
    left.AddDisjunct(ChainQuery(2 * i, "E", "Q"));
    right.AddDisjunct(ChainQuery(i, "E", "Q"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(UcqContainedIn(left, right));
  }
  state.counters["disjuncts"] = static_cast<double>(n);
}
BENCHMARK(BM_UcqContainment)->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("containment");
