#include "cq/conjunctive_query.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/check.h"

namespace vqdr {

std::string Atom::ToString() const {
  std::ostringstream out;
  out << predicate << "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ", ";
    out << args[i].ToString();
  }
  out << ")";
  return out.str();
}

bool ConjunctiveQuery::UsesConstants() const {
  auto any_const = [](const std::vector<Term>& terms) {
    return std::any_of(terms.begin(), terms.end(),
                       [](const Term& t) { return t.is_const(); });
  };
  if (any_const(head_terms_)) return true;
  for (const Atom& a : atoms_) {
    if (any_const(a.args)) return true;
  }
  for (const Atom& a : negated_atoms_) {
    if (any_const(a.args)) return true;
  }
  for (const TermComparison& c : equalities_) {
    if (c.lhs.is_const() || c.rhs.is_const()) return true;
  }
  for (const TermComparison& c : disequalities_) {
    if (c.lhs.is_const() || c.rhs.is_const()) return true;
  }
  return false;
}

std::vector<std::string> ConjunctiveQuery::AllVariables() const {
  std::vector<std::string> order;
  std::set<std::string> seen;
  auto visit = [&](const Term& t) {
    if (t.is_var() && seen.insert(t.var()).second) order.push_back(t.var());
  };
  for (const Term& t : head_terms_) visit(t);
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) visit(t);
  }
  for (const Atom& a : negated_atoms_) {
    for (const Term& t : a.args) visit(t);
  }
  for (const TermComparison& c : equalities_) {
    visit(c.lhs);
    visit(c.rhs);
  }
  for (const TermComparison& c : disequalities_) {
    visit(c.lhs);
    visit(c.rhs);
  }
  return order;
}

std::set<std::string> ConjunctiveQuery::PositiveBodyVariables() const {
  std::set<std::string> vars;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.is_var()) vars.insert(t.var());
    }
  }
  return vars;
}

std::set<Value> ConjunctiveQuery::Constants() const {
  std::set<Value> constants;
  auto visit = [&](const Term& t) {
    if (t.is_const()) constants.insert(t.constant());
  };
  for (const Term& t : head_terms_) visit(t);
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) visit(t);
  }
  for (const Atom& a : negated_atoms_) {
    for (const Term& t : a.args) visit(t);
  }
  for (const TermComparison& c : equalities_) {
    visit(c.lhs);
    visit(c.rhs);
  }
  for (const TermComparison& c : disequalities_) {
    visit(c.lhs);
    visit(c.rhs);
  }
  return constants;
}

bool ConjunctiveQuery::IsSafe() const {
  std::set<std::string> positive = PositiveBodyVariables();
  auto covered = [&](const Term& t) {
    return t.is_const() || positive.count(t.var()) > 0;
  };
  for (const Term& t : head_terms_) {
    if (!covered(t)) return false;
  }
  for (const Atom& a : negated_atoms_) {
    for (const Term& t : a.args) {
      if (!covered(t)) return false;
    }
  }
  for (const TermComparison& c : equalities_) {
    if (!covered(c.lhs) || !covered(c.rhs)) return false;
  }
  for (const TermComparison& c : disequalities_) {
    if (!covered(c.lhs) || !covered(c.rhs)) return false;
  }
  return true;
}

Schema ConjunctiveQuery::BodySchema() const {
  Schema schema;
  for (const Atom& a : atoms_) schema.Add(a.predicate, a.arity());
  for (const Atom& a : negated_atoms_) schema.Add(a.predicate, a.arity());
  return schema;
}

ConjunctiveQuery ConjunctiveQuery::RenameVariables(
    const std::function<std::string(const std::string&)>& rename) const {
  auto map_term = [&rename](const Term& t) {
    return t.is_var() ? Term::Var(rename(t.var())) : t;
  };
  auto map_atom = [&map_term](const Atom& a) {
    Atom result;
    result.predicate = a.predicate;
    result.args.reserve(a.args.size());
    for (const Term& t : a.args) result.args.push_back(map_term(t));
    return result;
  };
  ConjunctiveQuery result(head_name_, {});
  for (const Term& t : head_terms_) {
    result.head_terms_.push_back(map_term(t));
  }
  for (const Atom& a : atoms_) result.AddAtom(map_atom(a));
  for (const Atom& a : negated_atoms_) result.AddNegatedAtom(map_atom(a));
  for (const TermComparison& c : equalities_) {
    result.AddEquality(map_term(c.lhs), map_term(c.rhs));
  }
  for (const TermComparison& c : disequalities_) {
    result.AddDisequality(map_term(c.lhs), map_term(c.rhs));
  }
  return result;
}

namespace {

// Union-find over terms for equality propagation. Constants are roots and
// distinct constants never merge.
class TermUnification {
 public:
  // Returns false if two distinct constants would be merged.
  bool Unify(const Term& a, const Term& b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return true;
    if (ra.is_const() && rb.is_const()) return false;
    if (ra.is_const()) {
      parent_[rb.var()] = ra;
    } else {
      parent_[ra.var()] = rb;
    }
    return true;
  }

  Term Find(const Term& t) {
    if (t.is_const()) return t;
    auto it = parent_.find(t.var());
    if (it == parent_.end()) return t;
    Term root = Find(it->second);
    parent_[t.var()] = root;
    return root;
  }

 private:
  std::map<std::string, Term> parent_;
};

}  // namespace

ConjunctiveQuery ConjunctiveQuery::PropagateEqualities(
    bool* satisfiable) const {
  *satisfiable = true;
  TermUnification uf;
  for (const TermComparison& c : equalities_) {
    if (!uf.Unify(c.lhs, c.rhs)) {
      *satisfiable = false;
    }
  }
  auto map_term = [&uf](const Term& t) { return uf.Find(t); };
  ConjunctiveQuery result(head_name_, {});
  for (const Term& t : head_terms_) result.head_terms_.push_back(map_term(t));
  for (const Atom& a : atoms_) {
    Atom mapped;
    mapped.predicate = a.predicate;
    for (const Term& t : a.args) mapped.args.push_back(map_term(t));
    result.AddAtom(std::move(mapped));
  }
  for (const Atom& a : negated_atoms_) {
    Atom mapped;
    mapped.predicate = a.predicate;
    for (const Term& t : a.args) mapped.args.push_back(map_term(t));
    result.AddNegatedAtom(std::move(mapped));
  }
  for (const TermComparison& c : disequalities_) {
    Term lhs = map_term(c.lhs);
    Term rhs = map_term(c.rhs);
    if (lhs == rhs) {
      *satisfiable = false;
    }
    // Two distinct constants are always unequal: the atom is vacuous.
    if (lhs.is_const() && rhs.is_const() && !(lhs == rhs)) continue;
    result.AddDisequality(lhs, rhs);
  }
  return result;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  out << head_name_ << "(";
  for (std::size_t i = 0; i < head_terms_.size(); ++i) {
    if (i > 0) out << ", ";
    out << head_terms_[i].ToString();
  }
  out << ") :- ";
  bool first = true;
  auto sep = [&]() {
    if (!first) out << ", ";
    first = false;
  };
  for (const Atom& a : atoms_) {
    sep();
    out << a.ToString();
  }
  for (const Atom& a : negated_atoms_) {
    sep();
    out << "not " << a.ToString();
  }
  for (const TermComparison& c : equalities_) {
    sep();
    out << c.lhs.ToString() << " = " << c.rhs.ToString();
  }
  for (const TermComparison& c : disequalities_) {
    sep();
    out << c.lhs.ToString() << " != " << c.rhs.ToString();
  }
  if (first) out << "true";
  return out.str();
}

bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return a.head_name_ == b.head_name_ && a.head_terms_ == b.head_terms_ &&
         a.atoms_ == b.atoms_ && a.negated_atoms_ == b.negated_atoms_ &&
         a.equalities_ == b.equalities_ &&
         a.disequalities_ == b.disequalities_;
}

}  // namespace vqdr
