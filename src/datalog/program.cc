#include "datalog/program.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/check.h"
#include "base/string_util.h"
#include "cq/matcher.h"
#include "cq/parser.h"

namespace vqdr {

namespace {

Value ResolveGround(const Term& t, const Binding& binding) {
  if (t.is_const()) return t.constant();
  auto it = binding.find(t.var());
  VQDR_CHECK(it != binding.end()) << "unbound variable in datalog rule";
  return it->second;
}

// Applies one rule under semi-naïve restriction: `delta_atom` (an index into
// rule.positive, or -1 for no restriction) is matched against `delta`
// instead of the full database. New head facts are inserted into `out`.
void ApplyRule(const DatalogRule& rule, const Instance& db,
               const Instance& delta, int delta_atom, Relation& out) {
  // Build the database the matcher sees: for the delta-restricted atom we
  // swap in the delta relation under a reserved name.
  static const char kDeltaName[] = "__delta";
  std::vector<Atom> atoms = rule.positive;
  Instance view = db;
  if (delta_atom >= 0) {
    const std::string& pred = atoms[delta_atom].predicate;
    Schema schema = db.schema();
    schema.Add(kDeltaName, *schema.ArityOf(pred));
    Instance with_delta(schema);
    for (const RelationDecl& d : db.schema().decls()) {
      with_delta.Set(d.name, db.Get(d.name));
    }
    with_delta.Set(kDeltaName, delta.Get(pred));
    view = std::move(with_delta);
    atoms[delta_atom].predicate = kDeltaName;
  }

  ForEachMatch(atoms, view, Binding{}, [&](const Binding& binding) {
    for (const TermComparison& c : rule.disequalities) {
      if (ResolveGround(c.lhs, binding) == ResolveGround(c.rhs, binding)) {
        return true;
      }
    }
    for (const Atom& neg : rule.negated) {
      if (!db.schema().Contains(neg.predicate)) continue;
      Tuple ground;
      for (const Term& t : neg.args) ground.push_back(ResolveGround(t, binding));
      if (db.HasFact(neg.predicate, ground)) return true;
    }
    Tuple fact;
    fact.reserve(rule.head.args.size());
    for (const Term& t : rule.head.args) {
      fact.push_back(ResolveGround(t, binding));
    }
    out.Insert(fact);
    return true;
  });
}

}  // namespace

bool DatalogRule::IsSafe() const {
  std::set<std::string> positive_vars;
  for (const Atom& a : positive) {
    for (const Term& t : a.args) {
      if (t.is_var()) positive_vars.insert(t.var());
    }
  }
  auto covered = [&](const Term& t) {
    return t.is_const() || positive_vars.count(t.var()) > 0;
  };
  for (const Term& t : head.args) {
    if (!covered(t)) return false;
  }
  for (const Atom& a : negated) {
    for (const Term& t : a.args) {
      if (!covered(t)) return false;
    }
  }
  for (const TermComparison& c : disequalities) {
    if (!covered(c.lhs) || !covered(c.rhs)) return false;
  }
  return true;
}

std::string DatalogRule::ToString() const {
  std::ostringstream out;
  out << head.ToString() << " :- ";
  bool first = true;
  auto sep = [&]() {
    if (!first) out << ", ";
    first = false;
  };
  for (const Atom& a : positive) {
    sep();
    out << a.ToString();
  }
  for (const Atom& a : negated) {
    sep();
    out << "not " << a.ToString();
  }
  for (const TermComparison& c : disequalities) {
    sep();
    out << c.lhs.ToString() << " != " << c.rhs.ToString();
  }
  if (first) out << "true";
  return out.str();
}

std::set<std::string> DatalogProgram::IdbPredicates() const {
  std::set<std::string> idb;
  for (const DatalogRule& r : rules_) idb.insert(r.head.predicate);
  return idb;
}

bool DatalogProgram::IsPositive() const {
  return std::all_of(rules_.begin(), rules_.end(),
                     [](const DatalogRule& r) { return r.negated.empty(); });
}

bool DatalogProgram::IsStratified() const {
  // Build the dependency graph over IDB predicates; an edge p -> q when q
  // occurs in the body of a rule for p, marked negative if negated. The
  // program is stratified iff no cycle contains a negative edge.
  std::set<std::string> idb = IdbPredicates();
  std::map<std::string, std::set<std::string>> pos_edges, neg_edges;
  for (const DatalogRule& r : rules_) {
    for (const Atom& a : r.positive) {
      if (idb.count(a.predicate)) pos_edges[r.head.predicate].insert(a.predicate);
    }
    for (const Atom& a : r.negated) {
      if (idb.count(a.predicate)) neg_edges[r.head.predicate].insert(a.predicate);
    }
  }
  // For each negative edge p -¬-> q, require that q cannot reach p.
  auto reaches = [&](const std::string& from, const std::string& to) {
    std::set<std::string> seen{from};
    std::vector<std::string> stack{from};
    while (!stack.empty()) {
      std::string cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      for (const auto* edges : {&pos_edges, &neg_edges}) {
        auto it = edges->find(cur);
        if (it == edges->end()) continue;
        for (const std::string& next : it->second) {
          if (seen.insert(next).second) stack.push_back(next);
        }
      }
    }
    return false;
  };
  for (const auto& [p, targets] : neg_edges) {
    for (const std::string& q : targets) {
      if (q == p || reaches(q, p)) return false;
    }
  }
  return true;
}

StatusOr<Instance> DatalogProgram::Evaluate(const Instance& edb) const {
  for (const DatalogRule& r : rules_) {
    if (!r.IsSafe()) {
      return Status::Error("unsafe datalog rule: " + r.ToString());
    }
  }
  if (!IsStratified()) {
    return Status::Error("datalog program is not stratified");
  }

  std::set<std::string> idb = IdbPredicates();

  // Compute strata: stratum of an IDB predicate = 1 + max over negated IDB
  // deps, >= stratum of positive deps. Iterate to fixpoint (small programs).
  std::map<std::string, int> stratum;
  for (const std::string& p : idb) stratum[p] = 0;
  bool changed = true;
  int iterations = 0;
  while (changed) {
    changed = false;
    VQDR_CHECK_LT(++iterations, 1000) << "stratification did not converge";
    for (const DatalogRule& r : rules_) {
      int& s = stratum[r.head.predicate];
      for (const Atom& a : r.positive) {
        if (idb.count(a.predicate) && stratum[a.predicate] > s) {
          s = stratum[a.predicate];
          changed = true;
        }
      }
      for (const Atom& a : r.negated) {
        if (idb.count(a.predicate) && stratum[a.predicate] + 1 > s) {
          s = stratum[a.predicate] + 1;
          changed = true;
        }
      }
    }
  }
  int max_stratum = 0;
  for (const auto& [p, s] : stratum) max_stratum = std::max(max_stratum, s);

  // Database accumulating EDB and computed IDB facts.
  Schema schema = edb.schema();
  for (const DatalogRule& r : rules_) {
    schema.Add(r.head.predicate, r.head.arity());
    for (const Atom& a : r.positive) schema.Add(a.predicate, a.arity());
    for (const Atom& a : r.negated) schema.Add(a.predicate, a.arity());
  }
  Instance db(schema);
  for (const RelationDecl& d : edb.schema().decls()) {
    db.Set(d.name, edb.Get(d.name));
  }

  for (int s = 0; s <= max_stratum; ++s) {
    // Rules of this stratum.
    std::vector<const DatalogRule*> stratum_rules;
    for (const DatalogRule& r : rules_) {
      if (stratum[r.head.predicate] == s) stratum_rules.push_back(&r);
    }
    if (stratum_rules.empty()) continue;

    std::set<std::string> stratum_preds;
    for (const DatalogRule* r : stratum_rules) {
      stratum_preds.insert(r->head.predicate);
    }

    // Initial round: full naive application.
    Instance delta(schema);
    for (const DatalogRule* r : stratum_rules) {
      Relation derived(r->head.arity());
      ApplyRule(*r, db, /*delta=*/db, /*delta_atom=*/-1, derived);
      for (const Tuple& t : derived.tuples()) {
        if (db.AddFact(r->head.predicate, t)) {
          delta.AddFact(r->head.predicate, t);
        }
      }
    }

    // Semi-naïve rounds: each rule fires once per positive atom over a
    // same-stratum IDB predicate, with that atom restricted to the delta.
    while (!delta.Empty()) {
      Instance next_delta(schema);
      for (const DatalogRule* r : stratum_rules) {
        for (std::size_t i = 0; i < r->positive.size(); ++i) {
          const std::string& pred = r->positive[i].predicate;
          if (stratum_preds.count(pred) == 0) continue;
          if (delta.Get(pred).empty()) continue;
          Relation derived(r->head.arity());
          ApplyRule(*r, db, delta, static_cast<int>(i), derived);
          for (const Tuple& t : derived.tuples()) {
            if (db.AddFact(r->head.predicate, t)) {
              next_delta.AddFact(r->head.predicate, t);
            }
          }
        }
      }
      delta = std::move(next_delta);
    }
  }
  return db;
}

StatusOr<Relation> DatalogProgram::Query(const Instance& edb,
                                         const std::string& predicate) const {
  StatusOr<Instance> result = Evaluate(edb);
  if (!result.ok()) return result.status();
  if (!result->schema().Contains(predicate)) {
    return Status::Error("unknown predicate " + predicate);
  }
  return result->Get(predicate);
}

std::string DatalogProgram::ToString() const {
  std::ostringstream out;
  for (const DatalogRule& r : rules_) out << r.ToString() << ";\n";
  return out.str();
}

StatusOr<DatalogProgram> ParseDatalog(std::string_view text, NamePool& pool) {
  DatalogProgram program;
  for (const std::string& piece : Split(text, ';')) {
    std::string_view line = StripWhitespace(piece);
    if (line.empty()) continue;
    StatusOr<ConjunctiveQuery> rule_q = ParseCq(line, pool);
    if (!rule_q.ok()) return rule_q.status();
    const ConjunctiveQuery& q = rule_q.value();
    if (q.UsesEquality()) {
      return Status::Error("equalities not supported in datalog rules");
    }
    DatalogRule rule;
    rule.head = Atom(q.head_name(), q.head_terms());
    rule.positive = q.atoms();
    rule.negated = q.negated_atoms();
    rule.disequalities = q.disequalities();
    program.AddRule(std::move(rule));
  }
  if (program.rules().empty()) {
    return Status::Error("empty datalog program");
  }
  return program;
}

}  // namespace vqdr
