#include "obs/export.h"

#include <cctype>
#include <ostream>

#include "obs/profile.h"

namespace vqdr::obs {

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the dots of
// the vqdr scheme, mostly) becomes '_'. The "vqdr_" prefix namespaces the
// exposition and guarantees a legal leading character.
std::string PromName(const std::string& name) {
  std::string out = "vqdr_";
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// HELP line values escape backslash and newline per the exposition format.
std::string PromHelpEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendUint(std::uint64_t v, std::string* out) {
  out->append(std::to_string(v));
}

}  // namespace

std::string ExportPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PromName(name) + "_total";
    out += "# HELP " + prom + " " + PromHelpEscape(name) + "\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    AppendUint(value, &out);
    out += "\n";
  }
  for (const auto& [name, hs] : snapshot.histograms) {
    std::string prom = PromName(name);
    out += "# HELP " + prom + " " + PromHelpEscape(name) + "\n";
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      cumulative += hs.buckets[i];
      out += prom + "_bucket{le=\"";
      if (i == kHistogramBuckets - 1) {
        out += "+Inf";
      } else {
        AppendUint(HistogramBucketUpperBound(i), &out);
      }
      out += "\"} ";
      AppendUint(cumulative, &out);
      out += "\n";
    }
    out += prom + "_sum ";
    AppendUint(hs.sum, &out);
    out += "\n";
    out += prom + "_count ";
    AppendUint(hs.count, &out);
    out += "\n";
  }
  return out;
}

std::string ExportPrometheusText() {
  return ExportPrometheusText(SnapshotMetrics());
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    internal::AppendJsonString(e.name, &out);
    out += ",\"cat\":\"vqdr\",\"ph\":\"X\",\"ts\":";
    AppendUint(e.start_us, &out);
    out += ",\"dur\":";
    AppendUint(e.dur_us, &out);
    out += ",\"pid\":1,\"tid\":";
    AppendUint(e.tid, &out);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    if (e.has_arg) {
      out += ",\"arg\":";
      out += std::to_string(e.arg);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool ConvertTraceJsonlToChrome(std::istream& in, std::ostream& out,
                               std::string* error) {
  std::optional<std::vector<TraceEvent>> events = ParseTraceJsonl(in, error);
  if (!events.has_value()) return false;
  out << ChromeTraceJson(*events);
  return true;
}

}  // namespace vqdr::obs
