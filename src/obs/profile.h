#ifndef VQDR_OBS_PROFILE_H_
#define VQDR_OBS_PROFILE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

// Span-tree profiler: folds completed TraceEvents (from the in-process ring
// or a JSONL sink) into an aggregated call tree. Spans are recorded on
// *completion*, so the input stream is ordered by end time, not call order;
// reconstruction re-sorts per thread by start time and re-nests on
// (tid, depth, interval containment). Identical name-paths aggregate — the
// tree answers "how many times did cq.match run under chase.level, and how
// much of chase.level's time was its own" rather than listing every span.

namespace vqdr::obs {

/// One aggregated node: every span with this name at this path position.
struct ProfileNode {
  std::string name;
  /// Number of spans folded into this node.
  std::uint64_t count = 0;
  /// Wall microseconds across all occurrences, children included.
  std::uint64_t total_us = 0;
  /// total_us minus the children's total_us (clamped at 0).
  std::uint64_t self_us = 0;
  /// Sorted by total_us descending (name ascending on ties).
  std::vector<ProfileNode> children;
};

/// An aggregated span tree. Threads are merged: a chase.level span from
/// worker 3 and worker 5 land in the same node when their paths match.
struct Profile {
  std::vector<ProfileNode> roots;
  /// Spans folded in (== input size).
  std::uint64_t span_count = 0;
  /// Sum of root total_us.
  std::uint64_t total_us = 0;
  /// Spans whose parent could not be resolved (ring overflow dropped it, or
  /// the parent had not completed when the stream was cut). They are
  /// re-rooted rather than dropped.
  std::uint64_t orphans = 0;
};

/// Builds the aggregated tree from completed spans in any order.
Profile BuildProfile(const std::vector<TraceEvent>& events);

/// Renders a fixed-column indented text tree, largest subtree first.
std::string RenderProfileText(const Profile& profile);

/// Parses a JSONL trace sink (one span object per line, as written by
/// SetTraceSinkPath) back into events. Blank lines are skipped. Returns
/// nullopt (with *error set, if given) on a malformed line.
std::optional<std::vector<TraceEvent>> ParseTraceJsonl(std::istream& in,
                                                       std::string* error =
                                                           nullptr);

}  // namespace vqdr::obs

#endif  // VQDR_OBS_PROFILE_H_
