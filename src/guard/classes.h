#ifndef VQDR_GUARD_CLASSES_H_
#define VQDR_GUARD_CLASSES_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "guard/budget.h"

// Budget classes: named admission-control policies for multi-tenant callers
// (the vqdr-serve request path, DESIGN.md §13). A class bundles
//
//   * a per-request BudgetSpec CAP — whatever a request asks for is
//     tightened against it (TightenSpec: the tightest limit wins), so no
//     tenant can buy more work than its class allows;
//   * a concurrency limit — TryAcquire/Release slot accounting the admission
//     gate consults before a request ever reaches the dispatch queue;
//   * a backpressure hint — the retry_after_ms a structured `overloaded`
//     rejection carries back to the client.
//
// Classes are pure accounting and compile in regardless of -DVQDR_GUARD:
// with governance off the caps are ignored downstream (Budget is a stub) but
// admission slots still bound concurrency.

namespace vqdr::guard {

/// The tightest-limit-wins combination of two specs, field by field: a
/// limited value always beats an unlimited one, and two limited values take
/// the minimum. Used to clamp a request's asked-for budget to its class cap.
BudgetSpec TightenSpec(const BudgetSpec& a, const BudgetSpec& b);

/// Declarative description of one budget class.
struct BudgetClassSpec {
  std::string name;

  /// Per-request ceiling; default-constructed = no ceiling.
  BudgetSpec cap;

  /// Requests of this class admitted concurrently. 0 = unlimited.
  int max_concurrent = 0;

  /// Backpressure hint carried by `overloaded` rejections of this class.
  std::uint64_t retry_after_ms = 25;
};

/// One live class: its spec plus in-flight slot accounting. Thread-safe.
class BudgetClass {
 public:
  explicit BudgetClass(BudgetClassSpec spec) : spec_(std::move(spec)) {}

  BudgetClass(const BudgetClass&) = delete;
  BudgetClass& operator=(const BudgetClass&) = delete;

  const BudgetClassSpec& spec() const { return spec_; }

  /// Claims an admission slot; false when the class is at max_concurrent.
  /// Every successful TryAcquire must be paired with exactly one Release.
  bool TryAcquire();
  void Release();

  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// Requests of this class ever admitted / rejected at the class gate.
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// The spec a request is actually granted: its asked-for limits tightened
  /// against this class's cap.
  BudgetSpec Grant(const BudgetSpec& requested) const {
    return TightenSpec(requested, spec_.cap);
  }

 private:
  BudgetClassSpec spec_;
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// Name -> class registry. Always contains a "default" class (no caps,
/// unlimited concurrency) that unknown tenants resolve to; Define() replaces
/// it to impose a baseline policy. Lookup is lock-free after construction
/// only in the sense that classes never move — Define/Resolve take a mutex,
/// so define classes at startup, not per request.
class BudgetClassTable {
 public:
  BudgetClassTable();

  /// Adds or replaces a class definition. Replacing resets slot accounting.
  void Define(BudgetClassSpec spec);

  /// The class named `name`, or nullptr.
  BudgetClass* Find(const std::string& name);

  /// The class named `name`, falling back to "default" when absent (or when
  /// `name` is empty).
  BudgetClass& Resolve(const std::string& name);

  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<BudgetClass>> classes_;
};

}  // namespace vqdr::guard

#endif  // VQDR_GUARD_CLASSES_H_
