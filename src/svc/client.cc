#include "svc/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vqdr::svc {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<Client> Client::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("connect(" + socket_path +
                            ") failed: " + std::strerror(errno));
  }
  Client c;
  c.fd_ = fd;
  return c;
}

StatusOr<std::string> Client::Call(std::string_view request_line,
                                   std::uint64_t timeout_ms) {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string frame(request_line);
  frame.push_back('\n');
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a server that closed the connection (idle timeout,
    // shutdown) must surface as an error status, not SIGPIPE the caller.
    ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write failed: " +
                              std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }

  char chunk[4096];
  while (true) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (timeout_ms != 0) {
      pollfd p{fd_, POLLIN, 0};
      int rc = ::poll(&p, 1, static_cast<int>(timeout_ms));
      if (rc == 0) return Status::Error("response timed out");
      if (rc < 0 && errno != EINTR) {
        return Status::Internal("poll failed");
      }
      if (rc < 0) continue;
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) return Status::Error("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("read failed: " +
                              std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace vqdr::svc
