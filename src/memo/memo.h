#ifndef VQDR_MEMO_MEMO_H_
#define VQDR_MEMO_MEMO_H_

/// vqdr::memo — result caching for the containment / chase / determinacy
/// engines (DESIGN.md §9).
///
/// This header is always safe to include. When the subsystem is compiled out
/// (-DVQDR_MEMO=OFF defines VQDR_MEMO_DISABLED, mirroring obs/par/guard) the
/// API collapses to inline no-ops: Enabled() is false, ResolveUse() is false,
/// GlobalStats() is empty, and callers never touch a Store.
///
/// Memoization is opt-in at runtime even when compiled in: the process-wide
/// switch starts from the VQDR_MEMO environment variable (off unless set to a
/// truthy value) and individual calls can force it on or off through
/// MemoOptions. This keeps cold-path behaviour — including obs counters that
/// tests pin exactly — untouched by default.

#include <cstdint>
#include <sstream>
#include <string>

namespace vqdr::memo {

/// Per-call memoization policy. kDefault defers to the process-wide switch.
enum class Use {
  kDefault,
  kOn,
  kOff,
};

class Store;

/// Optional knobs threaded through engine option structs. `store == nullptr`
/// means the process-wide GlobalStore().
struct MemoOptions {
  Use use = Use::kDefault;
  Store* store = nullptr;
};

/// Monotone cache activity counters plus a point-in-time size/capacity pair.
struct StatsSnapshot {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t installs = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;

  bool any() const { return hits + misses + installs + evictions > 0; }

  /// Activity since `before`: monotone fields subtract, entries/capacity keep
  /// the current (end-of-window) values. Inline so the disabled build links
  /// without the memo library.
  StatsSnapshot Delta(const StatsSnapshot& before) const {
    StatsSnapshot d;
    d.hits = hits - before.hits;
    d.misses = misses - before.misses;
    d.installs = installs - before.installs;
    d.evictions = evictions - before.evictions;
    d.entries = entries;
    d.capacity = capacity;
    return d;
  }

  /// "hits=3 misses=1 installs=1 evictions=0 entries=12/4096".
  std::string ToString() const {
    std::ostringstream out;
    out << "hits=" << hits << " misses=" << misses << " installs=" << installs
        << " evictions=" << evictions << " entries=" << entries << "/"
        << capacity;
    return out.str();
  }
};

/// Cumulative process-wide snapshot activity (DESIGN.md §14), for the
/// [memo] report line and tests. All counts are monotone.
struct SnapshotActivity {
  std::uint64_t loads = 0;            // successful file loads
  std::uint64_t loaded_entries = 0;   // entries restored into a store
  std::uint64_t skipped_entries = 0;  // unknown-tag entries skipped on load
  std::uint64_t corrupt = 0;          // load attempts rejected as corrupt
  std::uint64_t flushes = 0;          // snapshot files written
  std::uint64_t flushed_entries = 0;  // entries written across all flushes
  std::uint64_t clean_skips = 0;      // flushes skipped (store unchanged)

  bool any() const {
    return loads + loaded_entries + skipped_entries + corrupt + flushes +
               clean_skips >
           0;
  }

  /// "loads=1/12 skipped=0 corrupt=0 flushes=3/12 clean_skips=1".
  std::string ToString() const {
    std::ostringstream out;
    out << "loads=" << loads << "/" << loaded_entries
        << " skipped=" << skipped_entries << " corrupt=" << corrupt
        << " flushes=" << flushes << "/" << flushed_entries
        << " clean_skips=" << clean_skips;
    return out.str();
  }
};

#ifndef VQDR_MEMO_DISABLED

/// Process-wide switch; initialized from the VQDR_MEMO environment variable.
bool Enabled();
void SetEnabled(bool on);

/// True when this call should consult the cache.
bool ResolveUse(const MemoOptions& options);

/// The process-wide store; capacity from VQDR_MEMO_CAPACITY (entries, default
/// 8192; invalid or 0 falls back to the default).
Store& GlobalStore();

/// Picks the store a call should use.
Store& ResolveStore(const MemoOptions& options);

/// Stats of the process-wide store.
StatsSnapshot GlobalStats();

/// Cumulative snapshot load/flush activity (implemented in snapshot.cc).
SnapshotActivity GlobalSnapshotActivity();

/// RAII toggle for tests and benchmarks.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : previous_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

#else  // VQDR_MEMO_DISABLED

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}
inline bool ResolveUse(const MemoOptions&) { return false; }
inline StatsSnapshot GlobalStats() { return {}; }
inline SnapshotActivity GlobalSnapshotActivity() { return {}; }

class ScopedEnable {
 public:
  explicit ScopedEnable(bool) {}
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
};

#endif  // VQDR_MEMO_DISABLED

}  // namespace vqdr::memo

#endif  // VQDR_MEMO_MEMO_H_
