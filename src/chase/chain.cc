#include "chase/chain.h"

#include <string>
#include <utility>

#include "base/check.h"
#include "chase/view_inverse.h"
#include "obs/context.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

#ifndef VQDR_MEMO_DISABLED
#include <memory>

#include "cq/fingerprint.h"
#include "cq/serialize.h"
#include "data/serialize.h"
#include "memo/snapshot.h"
#include "memo/store.h"
#endif

namespace vqdr {

namespace {

#ifndef VQDR_MEMO_DISABLED
/// A cached chain plus the factory state after the build, so a hit can
/// replay the exact factory advance of the original computation.
struct CachedChaseChain {
  ChaseChain chain;
  std::int64_t end_next_id = 0;
};

// Snapshot codec (DESIGN.md §14). Only kComplete chains are ever installed
// (see BuildChaseChain), so the outcome is not encoded: a decoded chain is
// complete by construction, and the four level sequences share one length.
std::string EncodeCachedChain(const CachedChaseChain& cached) {
  wire::Encoder enc;
  EncodeFrozenQuery(cached.chain.frozen_query, enc);
  enc.U64(cached.chain.d.size());
  for (std::size_t k = 0; k < cached.chain.d.size(); ++k) {
    EncodeInstance(cached.chain.d[k], enc);
    EncodeInstance(cached.chain.s[k], enc);
    EncodeInstance(cached.chain.s_prime[k], enc);
    EncodeInstance(cached.chain.d_prime[k], enc);
  }
  enc.I64(cached.end_next_id);
  return enc.Take();
}

std::shared_ptr<const CachedChaseChain> DecodeCachedChain(
    std::string_view payload) {
  wire::Decoder dec(payload);
  auto cached = std::make_shared<CachedChaseChain>();
  if (!DecodeFrozenQuery(dec, &cached->chain.frozen_query)) return nullptr;
  std::uint64_t levels = dec.U64();
  if (!dec.CheckCount(levels, 64)) return nullptr;
  for (std::uint64_t k = 0; k < levels; ++k) {
    Instance d, s, sp, dp;
    if (!DecodeInstance(dec, &d) || !DecodeInstance(dec, &s) ||
        !DecodeInstance(dec, &sp) || !DecodeInstance(dec, &dp)) {
      return nullptr;
    }
    cached->chain.d.push_back(std::move(d));
    cached->chain.s.push_back(std::move(s));
    cached->chain.s_prime.push_back(std::move(sp));
    cached->chain.d_prime.push_back(std::move(dp));
  }
  cached->end_next_id = dec.I64();
  if (!dec.ok() || !dec.AtEnd()) return nullptr;
  return cached;
}

[[maybe_unused]] const bool kChainCodecRegistered =
    memo::RegisterSnapshotType<CachedChaseChain>(
        "chase.chain.v1", EncodeCachedChain, DecodeCachedChain);
#endif

ChaseChain BuildChaseChainImpl(const ViewSet& views, const ConjunctiveQuery& q,
                               const ChaseChainOptions& options,
                               ValueFactory& factory);

// One kChaseLevel event per completed level: the four instance sizes of the
// recurrence plus how many fresh nulls the level minted from the factory.
void RecordChaseLevel(obs::ExplainLog* log, int level, const ChaseChain& chain,
                      std::int64_t fresh_nulls) {
  if (!obs::Wants(log)) return;
  obs::ExplainEvent e;
  e.kind = obs::ExplainKind::kChaseLevel;
  e.label = "chase.level";
  e.stats["level"] = level;
  e.stats["d_facts"] =
      static_cast<std::int64_t>(chain.d[level].TupleCount());
  e.stats["s_facts"] =
      static_cast<std::int64_t>(chain.s[level].TupleCount());
  e.stats["s_prime_facts"] =
      static_cast<std::int64_t>(chain.s_prime[level].TupleCount());
  e.stats["d_prime_facts"] =
      static_cast<std::int64_t>(chain.d_prime[level].TupleCount());
  e.stats["fresh_nulls"] = fresh_nulls;
  log->Append(std::move(e));
}

void RecordChaseMemoProbe(obs::ExplainLog* log, bool hit) {
  if (!obs::Wants(log)) return;
  obs::ExplainEvent e;
  e.kind = obs::ExplainKind::kMemo;
  e.label = "chase.chain";
  e.detail = hit ? "hit" : "miss";
  e.stats["hit"] = hit ? 1 : 0;
  log->Append(std::move(e));
}

}  // namespace

ChaseChain BuildChaseChain(const ViewSet& views, const ConjunctiveQuery& q,
                           int levels, ValueFactory& factory) {
  ChaseChainOptions options;
  options.levels = levels;
  return BuildChaseChain(views, q, options, factory);
}

ChaseChain BuildChaseChain(const ViewSet& views, const ConjunctiveQuery& q,
                           const ChaseChainOptions& options,
                           ValueFactory& factory) {
  obs::OpScope op(obs::OpKind::kChase, "chase.chain", options.budget);
#ifndef VQDR_MEMO_DISABLED
  if (memo::ResolveUse(options.memo)) {
    VQDR_TRACE_SPAN("memo.chase.chain");
    // Exact key: the chain's instances carry concrete value ids, so the
    // whole input state — including where the factory will mint from — must
    // match for a cached chain to be byte-identical.
    std::string key = "chase.chain|" + views.ToString() + "|" +
                      ExactCqKey(q) + "|L" +
                      std::to_string(options.levels) + "|F" +
                      std::to_string(factory.next_id());
    memo::Store& store = memo::ResolveStore(options.memo);
    if (auto hit = store.Get<CachedChaseChain>(key)) {
      RecordChaseMemoProbe(options.explain, /*hit=*/true);
      factory.NoteUsed(Value(hit->end_next_id - 1));
      return hit->chain;
    }
    RecordChaseMemoProbe(options.explain, /*hit=*/false);
    ChaseChain chain = BuildChaseChainImpl(views, q, options, factory);
    // Never cache partial results: a truncated or errored chain reflects the
    // budget/fault environment of this one call, not the inputs.
    if (guard::IsComplete(chain.outcome)) {
      store.Put(key, CachedChaseChain{chain, factory.next_id()});
    }
    return chain;
  }
#endif
  return BuildChaseChainImpl(views, q, options, factory);
}

namespace {

ChaseChain BuildChaseChainImpl(const ViewSet& views, const ConjunctiveQuery& q,
                               const ChaseChainOptions& options,
                               ValueFactory& factory) {
  const int levels = options.levels;
  guard::Budget* budget = options.budget;
  VQDR_COUNTER_INC("chase.chain.builds");
  VQDR_TRACE_SPAN("chase.chain", levels);
  VQDR_CHECK(views.AllPureCq()) << "chase chain requires pure CQ views";
  VQDR_CHECK(q.IsPureCq()) << "chase chain requires a pure CQ query";
  VQDR_CHECK_GE(levels, 0);

  // Freeze only notes q's own constants; constants appearing solely in a
  // view definition would otherwise be reachable by the frozen values of
  // [Q] and alias a chase null to a dom constant at level 0 (ViewInverse
  // guards its own minting the same way for deeper levels).
  for (const View& v : views.views()) {
    for (Value c : v.query.AsCq().Constants()) factory.NoteUsed(c);
  }

  ChaseChain chain;
  std::int64_t ids_before_level = factory.next_id();
  chain.frozen_query = Freeze(q, factory);

  // Level 0.
  Schema chase_schema = ChaseSchema(views, chain.frozen_query.instance.schema());
  Instance d0(chase_schema);
  for (const RelationDecl& decl : chain.frozen_query.instance.schema().decls()) {
    d0.Set(decl.name, chain.frozen_query.instance.Get(decl.name));
  }
  try {
    chain.d.push_back(d0);
    chain.s.push_back(views.Apply(d0));
    chain.s_prime.push_back(Instance(views.OutputSchema()));  // S'_0 = ∅
    Instance empty(chase_schema);
    Instance dp0 = ViewInverse(views, empty, chain.s[0], factory, budget);
    if (budget != nullptr && budget->Stopped()) {
      // Level 0 could not be completed: drop everything so the invariant
      // "every level present is exact" holds vacuously.
      chain.d.clear();
      chain.s.clear();
      chain.s_prime.clear();
      chain.outcome = budget->stop_reason();
      return chain;
    }
    chain.d_prime.push_back(std::move(dp0));
    RecordChaseLevel(options.explain, 0, chain,
                     factory.next_id() - ids_before_level);
  } catch (...) {
    if (budget != nullptr) budget->MarkInternalError();
    chain.d.clear();
    chain.s.clear();
    chain.s_prime.clear();
    chain.outcome = guard::Outcome::kInternalError;
    return chain;
  }

  for (int k = 0; k < levels; ++k) {
    if (budget != nullptr && !budget->AllowsChaseLevel(k + 1)) {
      chain.outcome = guard::Outcome::kStepBudgetExhausted;
      break;
    }
    VQDR_COUNTER_INC("chase.chain.levels");
    VQDR_TRACE_SPAN("chase.level", k + 1);
    // Build the whole level into locals and append only when the budget
    // survived it — a tripped budget leaves a partial inverse, which must
    // never become a chain level.
    ids_before_level = factory.next_id();
    try {
      // S'_{k+1} = V(D'_k)
      Instance sp = views.Apply(chain.d_prime[k]);
      // D_{k+1} = V_{D_k}^{-1}(S'_{k+1})
      Instance d = ViewInverse(views, chain.d[k], sp, factory, budget);
      // S_{k+1} = V(D_{k+1})
      Instance s = views.Apply(d);
      // D'_{k+1} = V_{D'_k}^{-1}(S_{k+1})
      Instance dp = ViewInverse(views, chain.d_prime[k], s, factory, budget);
      if (budget != nullptr && budget->Stopped()) {
        chain.outcome = budget->stop_reason();
        break;
      }
      chain.s_prime.push_back(std::move(sp));
      chain.d.push_back(std::move(d));
      chain.s.push_back(std::move(s));
      chain.d_prime.push_back(std::move(dp));
      RecordChaseLevel(options.explain, k + 1, chain,
                       factory.next_id() - ids_before_level);
    } catch (...) {
      if (budget != nullptr) budget->MarkInternalError();
      chain.outcome = guard::Outcome::kInternalError;
      break;
    }
    VQDR_HISTOGRAM_RECORD("chase.chain.level_size",
                          chain.d[k + 1].TupleCount());
    // Chain levels grow doubly fast; report each one so a deep build stays
    // visibly alive. A false return asks us to stop at the level boundary.
    if (!obs::ReportProgress("chase.level", static_cast<std::uint64_t>(k + 1),
                             static_cast<std::uint64_t>(levels))) {
      chain.outcome = guard::Outcome::kCancelled;
      break;
    }
  }
  return chain;
}

}  // namespace

}  // namespace vqdr
