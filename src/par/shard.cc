#include "par/shard.h"

#include "obs/progress.h"

namespace vqdr::par {

ShardPlan PlanShards(std::uint64_t total, int threads,
                     std::uint64_t min_chunk, std::uint64_t max_chunk) {
  if (threads < 1) threads = 1;
  if (min_chunk < 1) min_chunk = 1;
  if (max_chunk < min_chunk) max_chunk = min_chunk;

  ShardPlan plan;
  plan.total = total;
  if (total == 0) {
    plan.chunk = min_chunk;
    plan.num_chunks = 0;
    return plan;
  }
  // ~8 chunks per worker gives the stealer room to balance without drowning
  // the pool in tiny tasks.
  std::uint64_t target_chunks =
      static_cast<std::uint64_t>(threads) * 8;
  std::uint64_t chunk = (total + target_chunks - 1) / target_chunks;
  if (chunk < min_chunk) chunk = min_chunk;
  if (chunk > max_chunk) chunk = max_chunk;
  plan.chunk = chunk;
  plan.num_chunks = (total + chunk - 1) / chunk;
  return plan;
}

OpContext::OpContext(const char* phase, std::uint64_t total,
                     std::uint64_t stride, guard::Budget* budget)
    : phase_(phase),
      total_(total),
      stride_(stride == 0 ? 1 : stride),
      enabled_(obs::ProgressEnabled()),
      budget_(budget),
      next_report_(stride == 0 ? 1 : stride) {}

bool OpContext::AddProgress(std::uint64_t n) {
  std::uint64_t done = done_.fetch_add(n, std::memory_order_relaxed) + n;
  // Governed calls heartbeat through the budget's checkpoint observer; an
  // ungoverned sweep must tick the op registry itself to stay visible to
  // the stall watchdog.
  if (budget_ == nullptr) obs::OpHeartbeat(n);
  if (!guard::IsComplete(guard::Check(budget_, n))) {
    Cancel();
    return false;
  }
  if (!enabled_) return !cancelled();
  if (done >= next_report_.load(std::memory_order_relaxed)) {
    // One reporter at a time; a worker that loses the race just skips the
    // report (the winner carries the aggregate count anyway).
    if (report_mu_.try_lock()) {
      std::lock_guard<std::mutex> lock(report_mu_, std::adopt_lock);
      std::uint64_t next = next_report_.load(std::memory_order_relaxed);
      if (done >= next) {
        next_report_.store(done + stride_, std::memory_order_relaxed);
        if (!obs::ReportProgress(phase_, done, total_)) Cancel();
      }
    }
  }
  return !cancelled();
}

}  // namespace vqdr::par
