# Empty compiler generated dependencies file for test_fo.
# This may be replaced when dependencies are built.
