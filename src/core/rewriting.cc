#include "core/rewriting.h"

#include <map>
#include <string>

#include "base/check.h"
#include "core/determinacy.h"
#include "cq/canonical.h"
#include "cq/containment.h"

namespace vqdr {

ConjunctiveQuery ExpandRewriting(const ConjunctiveQuery& r,
                                 const ViewSet& views) {
  VQDR_CHECK(views.AllPureCq()) << "expansion requires pure CQ views";
  VQDR_CHECK(r.IsPureCq()) << "expansion requires a pure CQ rewriting";

  ConjunctiveQuery expansion(r.head_name(), r.head_terms());
  int copy = 0;
  for (const Atom& view_atom : r.atoms()) {
    const View& view = views.Get(view_atom.predicate);
    const ConjunctiveQuery& def = view.query.AsCq();
    VQDR_CHECK_EQ(def.head_arity(), view_atom.arity());

    // Rename the view body apart: every variable gets a per-copy suffix.
    std::string suffix = "@" + std::to_string(copy++);
    ConjunctiveQuery fresh = def.RenameVariables(
        [&suffix](const std::string& v) { return v + suffix; });

    // Unify the renamed head with the atom's arguments. First occurrence of
    // a head variable binds it; repeats and constants become equalities that
    // PropagateEqualities resolves below.
    std::map<std::string, Term> head_binding;
    for (int i = 0; i < view_atom.arity(); ++i) {
      const Term& pattern = fresh.head_terms()[i];
      const Term& arg = view_atom.args[i];
      if (pattern.is_const()) {
        expansion.AddEquality(pattern, arg);
        continue;
      }
      auto it = head_binding.find(pattern.var());
      if (it == head_binding.end()) {
        head_binding.emplace(pattern.var(), arg);
      } else {
        expansion.AddEquality(it->second, arg);
      }
    }
    ConjunctiveQuery bound = fresh.RenameVariables(
        [](const std::string& v) { return v; });  // copy
    for (const Atom& atom : bound.atoms()) {
      Atom mapped;
      mapped.predicate = atom.predicate;
      for (const Term& t : atom.args) {
        if (t.is_var()) {
          auto it = head_binding.find(t.var());
          mapped.args.push_back(it != head_binding.end() ? it->second : t);
        } else {
          mapped.args.push_back(t);
        }
      }
      expansion.AddAtom(std::move(mapped));
    }
  }

  bool satisfiable = true;
  ConjunctiveQuery normalized = expansion.PropagateEqualities(&satisfiable);
  if (!satisfiable) {
    // The rewriting can never produce a tuple; return an unsatisfiable CQ
    // over the base schema (kept explicit for callers).
    return expansion;
  }
  return normalized;
}

UnionQuery ExpandUcqRewriting(const UnionQuery& r, const ViewSet& views) {
  UnionQuery expansion;
  for (const ConjunctiveQuery& disjunct : r.disjuncts()) {
    expansion.AddDisjunct(ExpandRewriting(disjunct, views));
  }
  return expansion;
}

namespace {

// Greedily removes atoms from `rewriting` while its expansion stays
// equivalent to `target`.
ConjunctiveQuery MinimizeRewriting(const ConjunctiveQuery& rewriting,
                                   const ViewSet& views,
                                   const ConjunctiveQuery& target) {
  ConjunctiveQuery current = rewriting;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < current.atoms().size(); ++i) {
      ConjunctiveQuery candidate(current.head_name(), current.head_terms());
      for (std::size_t j = 0; j < current.atoms().size(); ++j) {
        if (j != i) candidate.AddAtom(current.atoms()[j]);
      }
      if (!candidate.IsSafe()) continue;
      if (CqEquivalent(ExpandRewriting(candidate, views), target)) {
        current = candidate;
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace

CqRewritingResult FindCqRewriting(const ViewSet& views,
                                  const ConjunctiveQuery& q, bool minimize) {
  CqRewritingResult result;
  UnrestrictedDeterminacyResult det = DecideUnrestrictedDeterminacy(views, q);
  if (!det.determined) return result;  // no equivalent rewriting exists
  result.exists = true;
  ConjunctiveQuery canonical = *det.canonical_rewriting;
  result.rewriting =
      minimize ? MinimizeRewriting(canonical, views, q) : canonical;
  return result;
}

UcqRewritingResult FindUcqRewriting(const ViewSet& views,
                                    const UnionQuery& q) {
  VQDR_CHECK(views.AllPureCq())
      << "UCQ rewriting synthesis requires pure CQ views";
  VQDR_CHECK(q.IsPureUcq()) << "UCQ rewriting requires a pure UCQ query";

  UcqRewritingResult result;
  UnionQuery candidate;
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    UnrestrictedDeterminacyResult det =
        DecideUnrestrictedDeterminacy(views, disjunct);
    // The canonical rewriting of the disjunct always satisfies
    // disjunct ⊆ expansion (Prop 3.5(ii)); the union is an equivalent
    // rewriting of q iff each expansion is additionally contained in q.
    std::set<Value> constants = disjunct.Constants();
    for (const View& v : views.views()) {
      for (Value c : v.query.AsCq().Constants()) constants.insert(c);
    }
    // Build the canonical rewriting even when the *disjunct* is not
    // individually determined: the union may still cover q.
    ConjunctiveQuery canonical =
        InstanceToQuery(det.canonical_view_image, det.frozen_head, constants,
                        q.head_name());
    if (!canonical.IsSafe()) return result;  // head value not exposed by V

    ConjunctiveQuery expansion = ExpandRewriting(canonical, views);
    if (!UcqContainedIn(UnionQuery(expansion), q)) {
      return result;  // this disjunct has no covering rewriting
    }
    candidate.AddDisjunct(std::move(canonical));
  }
  // By Prop 3.5(ii) per disjunct, q ⊆ expansion(candidate); the loop above
  // checked the converse, so candidate is an equivalent rewriting.
  result.exists = true;
  result.rewriting = std::move(candidate);
  return result;
}

RewritingValidation ValidateRewriting(const ViewSet& views, const Query& q,
                                      const Query& r, const Schema& base,
                                      const EnumerationOptions& options) {
  RewritingValidation validation;
  EnumerationOutcome outcome =
      ForEachInstance(base, options, [&](const Instance& d) {
        Relation direct = q.Eval(d);
        Relation via_views = r.Eval(views.Apply(d));
        if (direct != via_views) {
          validation.valid = false;
          validation.counterexample = d;
          return false;
        }
        return true;
      });
  validation.exhaustive = outcome.complete;
  return validation;
}

}  // namespace vqdr
