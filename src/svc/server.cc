#include "svc/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace vqdr::svc {

namespace {

/// Polls fd for readability in slices so `stopping` is honoured promptly.
/// Returns 1 readable, 0 idle-timeout, -1 error/stop.
int PollRead(int fd, std::uint64_t idle_timeout_ms,
             const std::atomic<bool>& stopping) {
  constexpr std::uint64_t kSliceMs = 100;
  std::uint64_t waited = 0;
  while (true) {
    if (stopping.load(std::memory_order_acquire)) return -1;
    pollfd p{fd, POLLIN, 0};
    std::uint64_t slice = kSliceMs;
    if (idle_timeout_ms != 0 && idle_timeout_ms - waited < slice) {
      slice = idle_timeout_ms - waited;
    }
    int rc = ::poll(&p, 1, static_cast<int>(slice));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc > 0) {
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (p.revents & POLLIN) == 0) {
        return -1;
      }
      return 1;
    }
    waited += slice;
    if (idle_timeout_ms != 0 && waited >= idle_timeout_ms) return 0;
  }
}

bool WriteAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a client that hung up must fail the write, not SIGPIPE
    // the whole process (embedders don't necessarily ignore SIGPIPE).
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) return Status::Internal("already started");
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("socket_path is required");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  ::unlink(options_.socket_path.c_str());  // stale path from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind(" + options_.socket_path +
                            ") failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed");
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // woken for shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    VQDR_COUNTER_INC("svc.connections");
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  bool resyncing = false;  // discarding an overlong frame up to its newline
  char chunk[4096];
  while (true) {
    // Find a complete line in what we already have before reading more.
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (resyncing) {
        // The tail of the overlong frame; already rejected, just resync.
        resyncing = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = service_.HandleLine(line);
      response.push_back('\n');
      if (!WriteAll(fd, response)) {
        ::close(fd);
        return;
      }
    }
    if (buffer.size() > kMaxRequestBytes) {
      // Reject once, then discard input until the frame's newline; the
      // connection itself survives the hostile frame.
      if (!resyncing) {
        std::string response = SerializeResponse(ErrorResponse(
            "frame_too_large", "request frame exceeds " +
                                   std::to_string(kMaxRequestBytes) +
                                   " bytes"));
        response.push_back('\n');
        if (!WriteAll(fd, response)) {
          ::close(fd);
          return;
        }
        resyncing = true;
      }
      buffer.clear();
    }
    int ready = PollRead(fd, options_.idle_timeout_ms, stopping_);
    if (ready <= 0) break;  // idle timeout, error, or server shutdown
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or hard error
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

void Server::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) return;

  // 1. Stop accepting.
  if (wake_pipe_[1] >= 0) {
    char b = 1;
    (void)!::write(wake_pipe_[1], &b, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: queued ops now reject with "draining"; wait (bounded) for
  //    in-flight work so accepted requests get real answers, not cut wires.
  service_.BeginDrain();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.drain_timeout_ms);
  while (service_.in_flight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // 3. Close connections (their threads see stopping_ at the next poll
  //    slice) and join them.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    conn_fds_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ::unlink(options_.socket_path.c_str());
}

}  // namespace vqdr::svc
