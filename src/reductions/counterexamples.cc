#include "reductions/counterexamples.h"

#include "base/check.h"
#include "cq/parser.h"

namespace vqdr {

namespace {

ConjunctiveQuery MustCq(const std::string& text, NamePool& pool) {
  StatusOr<ConjunctiveQuery> q = ParseCq(text, pool);
  VQDR_CHECK(q.ok()) << q.status().message();
  return std::move(q).value();
}

UnionQuery MustUcq(const std::string& text, NamePool& pool) {
  StatusOr<UnionQuery> q = ParseUcq(text, pool);
  VQDR_CHECK(q.ok()) << q.status().message();
  return std::move(q).value();
}

Instance MustInstance(const std::string& text, const Schema& schema,
                      NamePool& pool) {
  StatusOr<Instance> d = ParseInstance(text, schema, pool);
  VQDR_CHECK(d.ok()) << d.status().message();
  return std::move(d).value();
}

}  // namespace

NonMonotonicityFamily Prop58Family(NamePool& pool) {
  NonMonotonicityFamily family;
  family.base = Schema{{"P", 1}, {"R", 1}};

  family.views.Add("V1", Query::FromCq(MustCq("V1(x) :- P(x), R(y)", pool)));
  family.views.Add(
      "V2", Query::FromUcq(MustUcq("V2(x) :- P(x) | V2(x) :- R(x)", pool)));
  family.views.Add("V3", Query::FromCq(MustCq("V3(x) :- R(x)", pool)));
  family.query = Query::FromCq(MustCq("Q(x) :- P(x)", pool));

  family.witness.d1 = MustInstance("P(a), P(b)", family.base, pool);
  family.witness.d2 = MustInstance("P(a), R(b)", family.base, pool);
  family.witness.view_image1 = family.views.Apply(family.witness.d1);
  family.witness.view_image2 = family.views.Apply(family.witness.d2);
  return family;
}

NonMonotonicityFamily Prop512Family(NamePool& pool) {
  NonMonotonicityFamily family;
  family.base = Schema{{"R", 2}};

  family.views.Add(
      "V1", Query::FromCq(MustCq("V1(x) :- R(x, y), R(y, x)", pool)));
  family.views.Add(
      "V2",
      Query::FromCq(MustCq("V2(x) :- R(x, y), R(y, x), x != y", pool)));
  family.views.Add(
      "V3", Query::FromCq(MustCq(
                "V3(x) :- R(x, x), R(x, y), R(y, x), x != y", pool)));
  family.query = Query::FromCq(MustCq("Q(x) :- R(x, x)", pool));

  family.witness.d1 = MustInstance("R(a, a)", family.base, pool);
  family.witness.d2 = MustInstance("R(a, b), R(b, a)", family.base, pool);
  family.witness.view_image1 = family.views.Apply(family.witness.d1);
  family.witness.view_image2 = family.views.Apply(family.witness.d2);
  return family;
}

}  // namespace vqdr
