#include "core/query_answering.h"

#include <vector>

#include "gen/enumerate.h"

namespace vqdr {

namespace {

// The candidate universe: adom(S) plus `extra` fresh values.
std::vector<Value> CandidateUniverse(const Instance& s, int extra) {
  std::set<Value> universe = s.ActiveDomain();
  std::int64_t next = s.MaxValueId() + 1;
  for (int i = 0; i < extra; ++i) universe.insert(Value(next + i));
  return std::vector<Value>(universe.begin(), universe.end());
}

}  // namespace

StatusOr<PreimageAnswer> AnswerViaPreimage(const ViewSet& views,
                                           const Query& q, const Schema& base,
                                           const Instance& s,
                                           const QueryAnsweringOptions& opts) {
  std::vector<Value> universe = CandidateUniverse(s, opts.extra_values);
  std::optional<PreimageAnswer> found;
  EnumerationOutcome outcome = ForEachInstanceOver(
      base, universe, opts.max_instances, [&](const Instance& d) {
        if (views.Apply(d) != s) return true;
        found = PreimageAnswer{q.Eval(d), d, 0};
        return false;
      });
  if (!found.has_value()) {
    return Status::Error(
        outcome.complete
            ? "no pre-image of the view extent within the universe bound"
            : "budget exhausted before finding a pre-image");
  }
  found->instances_examined = outcome.visited;
  return *found;
}

PreimageAgreement AnswerViaAllPreimages(const ViewSet& views, const Query& q,
                                        const Schema& base, const Instance& s,
                                        const QueryAnsweringOptions& opts) {
  std::vector<Value> universe = CandidateUniverse(s, opts.extra_values);
  PreimageAgreement result;
  std::optional<Instance> first;
  EnumerationOutcome outcome = ForEachInstanceOver(
      base, universe, opts.max_instances, [&](const Instance& d) {
        if (views.Apply(d) != s) return true;
        Relation answer = q.Eval(d);
        if (!result.any_preimage) {
          result.any_preimage = true;
          result.answer = answer;
          first = d;
          return true;
        }
        if (answer != result.answer) {
          result.all_agree = false;
          result.disagreement = std::make_pair(*first, d);
          return false;
        }
        return true;
      });
  result.exhaustive = outcome.complete;
  result.instances_examined = outcome.visited;
  return result;
}

CertainAnswers ComputeCertainAnswers(const ViewSet& views, const Query& q,
                                     const Schema& base, const Instance& s,
                                     const QueryAnsweringOptions& opts) {
  std::vector<Value> universe = CandidateUniverse(s, opts.extra_values);
  CertainAnswers result;
  result.answer = Relation(q.arity());
  EnumerationOutcome outcome = ForEachInstanceOver(
      base, universe, opts.max_instances, [&](const Instance& d) {
        if (views.Apply(d) != s) return true;
        Relation answer = q.Eval(d);
        if (!result.any_preimage) {
          result.any_preimage = true;
          result.answer = answer;
        } else {
          result.answer = result.answer.Intersect(answer);
        }
        return true;
      });
  result.exhaustive = outcome.complete;
  result.instances_examined = outcome.visited;
  return result;
}

}  // namespace vqdr
