# Empty dependencies file for paper_replication.
# This may be replaced when dependencies are built.
