#ifndef VQDR_OBS_LOG_H_
#define VQDR_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

// Leveled, rate-limited structured logging for the solver stack (DESIGN.md
// §11). One JSONL record per line, every record stamped with the in-flight
// operation id (obs/context.h) so log lines join against the op registry,
// trace spans, and stall reports:
//
//   obs::LogRecord(obs::LogLevel::kInfo, "search.start")
//       .Num("max_size", opts.max_instance_size)
//       .Str("outcome", "running");   // emits on destruction
//
//   {"ts_ms":1754650000123,"level":"info","event":"search.start","op":7,
//    "tid":1,"max_size":3,"outcome":"running"}
//
// Logging is OFF by default: a disabled-level record costs one relaxed load
// and no formatting. Enable with VQDR_LOG=debug|info|warn|error (stderr
// sink), VQDR_LOG_FILE=<path> (file sink), or programmatically. A global
// token bucket (VQDR_LOG_RATE records/second, default 1000) sheds load
// under log storms; the first record admitted after a gap reports how many
// were dropped.
//
// Compiled to inert stubs under -DVQDR_OBS=OFF.

namespace vqdr::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  /// Sentinel: logging disabled (the default).
  kOff = 4,
};

/// Stable lowercase name ("debug", "info", ...).
inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "off";
}

#ifndef VQDR_OBS_DISABLED

/// Minimum level that emits; kOff disables logging entirely.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when a record at `level` would emit. One relaxed atomic load.
bool LogEnabled(LogLevel level);

/// Opens (truncating) a JSONL log sink at `path`; records go there instead
/// of stderr. Returns false if the file cannot be opened.
bool SetLogFilePath(const std::string& path);

/// Closes the file sink; records fall back to stderr.
void CloseLogFile();

/// Test seam: when set, finished lines go to `capture` INSTEAD of any sink.
/// Pass nullptr to restore normal sinking. The callback must be thread-safe.
void SetLogCapture(std::function<void(const std::string&)> capture);

/// Global admission rate in records/second (token bucket); 0 = unlimited.
void SetLogRateLimit(std::uint64_t per_second);

/// Records dropped by the rate limiter since process start.
std::uint64_t LogDroppedCount();

/// Reads VQDR_LOG (level), VQDR_LOG_FILE (sink path), and VQDR_LOG_RATE
/// (records/second) once. Called lazily from the first record and from the
/// first OpScope; exposed for tools.
void InitLogFromEnv();

/// One structured record, emitted on destruction. Field setters return
/// *this for chaining and are no-ops when the record's level is disabled
/// (the common case costs one load in the constructor, nothing after).
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view event);
  ~LogRecord();

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  LogRecord& Str(std::string_view key, std::string_view value);
  LogRecord& Num(std::string_view key, std::int64_t value);
  LogRecord& Num(std::string_view key, std::uint64_t value);
  // Disambiguators so plain int/unsigned literals pick a lane.
  LogRecord& Num(std::string_view key, int value) {
    return Num(key, static_cast<std::int64_t>(value));
  }
  LogRecord& Num(std::string_view key, unsigned value) {
    return Num(key, static_cast<std::uint64_t>(value));
  }
  LogRecord& Bool(std::string_view key, bool value);

 private:
  bool live_ = false;
  LogLevel level_ = LogLevel::kOff;
  std::string line_;
};

#else  // VQDR_OBS_DISABLED

inline void SetLogLevel(LogLevel) {}
inline LogLevel GetLogLevel() { return LogLevel::kOff; }
inline bool LogEnabled(LogLevel) { return false; }
inline bool SetLogFilePath(const std::string&) { return false; }
inline void CloseLogFile() {}
inline void SetLogCapture(std::function<void(const std::string&)>) {}
inline void SetLogRateLimit(std::uint64_t) {}
inline std::uint64_t LogDroppedCount() { return 0; }
inline void InitLogFromEnv() {}

class LogRecord {
 public:
  LogRecord(LogLevel, std::string_view) {}
  LogRecord& Str(std::string_view, std::string_view) { return *this; }
  LogRecord& Num(std::string_view, std::int64_t) { return *this; }
  LogRecord& Num(std::string_view, std::uint64_t) { return *this; }
  LogRecord& Num(std::string_view, int) { return *this; }
  LogRecord& Num(std::string_view, unsigned) { return *this; }
  LogRecord& Bool(std::string_view, bool) { return *this; }
};

#endif  // VQDR_OBS_DISABLED

}  // namespace vqdr::obs

#endif  // VQDR_OBS_LOG_H_
