file(REMOVE_RECURSE
  "CMakeFiles/test_determinacy.dir/determinacy_test.cc.o"
  "CMakeFiles/test_determinacy.dir/determinacy_test.cc.o.d"
  "test_determinacy"
  "test_determinacy.pdb"
  "test_determinacy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_determinacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
