// Memo subsystem hot-path win: repeat-heavy workloads timed cold (memo off)
// once, then warm against a pre-warmed store. Each benchmark reports
// `hit_rate` (store hits / lookups across the timed loop) and
// `speedup_vs_cold` (cold wall time / warm wall time for the same
// workload), so the emitted BENCH_memo.json carries the cache's measured
// value wherever it runs. Verdicts are identical either way — the
// differential battery (test_memo_differential) holds that line; only the
// wall clock moves here.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <vector>

#include "bench_json.h"

#include "core/determinacy_batch.h"
#include "cq/containment.h"
#include "gen/random_query.h"
#include "gen/workloads.h"
#include "memo/memo.h"
#include "memo/snapshot.h"
#include "memo/store.h"

namespace vqdr {
namespace {

double SecondsPerRun(const std::function<void()>& run) {
  auto start = std::chrono::steady_clock::now();
  run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Attaches the two headline counters from a timed cold run, a timed warm
// run, and the store's stats delta across the benchmark loop.
void ReportMemoCounters(benchmark::State& state, double cold_seconds,
                        double warm_seconds,
                        const memo::StatsSnapshot& delta) {
  double lookups = static_cast<double>(delta.hits + delta.misses);
  state.counters["hit_rate"] =
      lookups > 0 ? static_cast<double>(delta.hits) / lookups : 0.0;
  state.counters["speedup_vs_cold"] =
      warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0;
}

// A chain query with a head-to-tail disequality: containment against itself
// *holds*, so the identification-pattern sweep cannot early-exit and cold
// runs pay the full Bell-number sweep over the chain's variables.
ConjunctiveQuery DiseqChain(int length) {
  ConjunctiveQuery q = ChainQuery(length);
  q.AddDisequality(Term::Var("x0"), Term::Var("x" + std::to_string(length)));
  return q;
}

// A ≠-laden containment slate dominated by positive (full-sweep) checks:
// the pattern sweeps dominate cold runs, a fingerprint + lookup dominates
// warm ones.
std::vector<std::pair<ConjunctiveQuery, ConjunctiveQuery>>
ContainmentSlate() {
  std::vector<std::pair<ConjunctiveQuery, ConjunctiveQuery>> slate;
  for (int length = 4; length <= 6; ++length) {
    slate.emplace_back(DiseqChain(length), DiseqChain(length));
  }
  slate.emplace_back(DiseqChain(5), DiseqChain(4));
  slate.emplace_back(ChainQuery(5), ChainQuery(3));
  RandomCqOptions opts;
  opts.max_atoms = 4;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    ConjunctiveQuery a = RandomCq(rng, opts);
    ConjunctiveQuery b = RandomCq(rng, opts);
    slate.emplace_back(a, b);
  }
  return slate;
}

void BM_MemoContainmentWarm(benchmark::State& state) {
  auto slate = ContainmentSlate();
  auto run = [&slate](const CqContainmentOptions& options) {
    for (const auto& [a, b] : slate) {
      bool r = CqContainedIn(a, b, options);
      benchmark::DoNotOptimize(r);
    }
  };

  CqContainmentOptions cold;
  cold.memo = {memo::Use::kOff, nullptr};
  double cold_seconds = SecondsPerRun([&] { run(cold); });

  memo::Store store(4096);
  CqContainmentOptions warm;
  warm.memo = {memo::Use::kOn, &store};
  run(warm);  // warm the store once, outside the timed loop

  memo::StatsSnapshot before = store.Stats();
  for (auto _ : state) run(warm);
  memo::StatsSnapshot delta = store.Stats().Delta(before);
  double warm_seconds = SecondsPerRun([&] { run(warm); });
  ReportMemoCounters(state, cold_seconds, warm_seconds, delta);
}
BENCHMARK(BM_MemoContainmentWarm)->Unit(benchmark::kMillisecond);

void BM_MemoDeterminacyBatchWarm(benchmark::State& state) {
  // A batch whose items repeat (every pair appears three times): even a
  // single batch submission amortizes each decision across its duplicates,
  // and re-submissions are pure hits.
  std::vector<DeterminacyBatchItem> items;
  for (int length = 3; length <= 5; ++length) {
    DeterminacyBatchItem item;
    item.views = PathViews(2);
    item.query = ChainQuery(length);
    items.push_back(item);
  }
  RandomCqOptions opts;
  opts.max_atoms = 4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    DeterminacyBatchItem item;
    item.views = RandomCqViews(rng, opts, /*count=*/2);
    item.query = RandomCq(rng, opts);
    items.push_back(item);
  }
  // Triplicate the slate: duplicates amortize within one submission, and
  // re-submissions are pure hits.
  std::vector<DeterminacyBatchItem> base = items;
  for (int copy = 0; copy < 2; ++copy) {
    items.insert(items.end(), base.begin(), base.end());
  }

  memo::MemoOptions cold{memo::Use::kOff, nullptr};
  double cold_seconds = SecondsPerRun([&] {
    auto r = DecideUnrestrictedDeterminacyBatch(items, /*threads=*/1, cold);
    benchmark::DoNotOptimize(r);
  });

  memo::Store store(4096);
  memo::MemoOptions warm{memo::Use::kOn, &store};
  auto warm_run = [&] {
    auto r = DecideUnrestrictedDeterminacyBatch(items, /*threads=*/1, warm);
    benchmark::DoNotOptimize(r);
  };
  warm_run();

  memo::StatsSnapshot before = store.Stats();
  for (auto _ : state) warm_run();
  memo::StatsSnapshot delta = store.Stats().Delta(before);
  double warm_seconds = SecondsPerRun(warm_run);
  ReportMemoCounters(state, cold_seconds, warm_seconds, delta);
}
BENCHMARK(BM_MemoDeterminacyBatchWarm)->Unit(benchmark::kMillisecond);

void BM_MemoIsomorphSharing(benchmark::State& state) {
  // Sixteen renamed/reshuffled copies of one expensive containment check:
  // canonical keys fold them all onto a single cache entry, so the warm
  // workload pays one computation plus fifteen fingerprints.
  ConjunctiveQuery base1 = DiseqChain(5);
  ConjunctiveQuery base2 = DiseqChain(5);

  std::vector<ConjunctiveQuery> copies;
  for (int i = 0; i < 16; ++i) {
    copies.push_back(base1.RenameVariables(
        [i](const std::string& v) { return v + "_" + std::to_string(i); }));
  }

  auto run = [&](const CqContainmentOptions& options) {
    for (const ConjunctiveQuery& q : copies) {
      bool r = CqContainedIn(q, base2, options);
      benchmark::DoNotOptimize(r);
    }
  };
  CqContainmentOptions cold;
  cold.memo = {memo::Use::kOff, nullptr};
  double cold_seconds = SecondsPerRun([&] { run(cold); });

  memo::Store store(256);
  CqContainmentOptions warm;
  warm.memo = {memo::Use::kOn, &store};
  run(warm);

  memo::StatsSnapshot before = store.Stats();
  for (auto _ : state) run(warm);
  memo::StatsSnapshot delta = store.Stats().Delta(before);
  double warm_seconds = SecondsPerRun([&] { run(warm); });
  ReportMemoCounters(state, cold_seconds, warm_seconds, delta);
}
BENCHMARK(BM_MemoIsomorphSharing)->Unit(benchmark::kMillisecond);

// Cold boot vs warm boot (DESIGN.md §14): the restart story in one number.
// Cold = a fresh process computes the determinacy slate from scratch. Warm =
// a fresh process restores the snapshot image first, then serves the same
// slate from hits. `warm_boot_speedup` is time-to-first-results cold over
// warm (snapshot load included in the warm side); `snapshot_load_ms` and
// `snapshot_bytes` price the restore itself.
void BM_MemoSnapshotWarmBoot(benchmark::State& state) {
  // A mixed first-batch: the ≠-laden containment slate (full Bell-number
  // sweeps when cold, bool.v1 snapshot entries) plus a determinacy batch
  // (chase work when cold, det.v1/chase.* snapshot entries). A cold boot
  // computes all of it; a warm boot pays a snapshot load plus one
  // exact-key lookup per item.
  auto slate = ContainmentSlate();
  std::vector<DeterminacyBatchItem> items;
  for (int length = 3; length <= 5; ++length) {
    DeterminacyBatchItem item;
    item.views = PathViews(2);
    item.query = ChainQuery(length);
    items.push_back(item);
  }

  auto run_first_batch = [&](memo::MemoOptions memo_opts) {
    CqContainmentOptions copts;
    copts.memo = memo_opts;
    for (const auto& [a, b] : slate) {
      bool r = CqContainedIn(a, b, copts);
      benchmark::DoNotOptimize(r);
    }
    auto d = DecideUnrestrictedDeterminacyBatch(items, /*threads=*/1,
                                                memo_opts);
    benchmark::DoNotOptimize(d);
  };

  // Yesterday's process: compute once with the memo on, snapshot the store.
  memo::Store yesterday(4096);
  run_first_batch({memo::Use::kOn, &yesterday});
  memo::SnapshotIoStats image_stats;
  std::string image = memo::SerializeSnapshot(yesterday, &image_stats);

  // Cold boot: an empty store pays full compute for its first results.
  double cold_seconds = SecondsPerRun([&] {
    memo::Store store(4096);
    run_first_batch({memo::Use::kOn, &store});
  });

  // Warm boot: restore the image, then serve the same first batch. The
  // load is inside the timed region — it is the price of booting warm.
  double load_seconds = 0;
  std::uint64_t restored = 0;
  std::uint64_t first_batch_hits = 0;
  double warm_seconds = SecondsPerRun([&] {
    memo::Store store(4096);
    memo::SnapshotIoStats rstats = memo::DeserializeSnapshot(image, store);
    restored = rstats.entries;
    memo::StatsSnapshot before = store.Stats();
    run_first_batch({memo::Use::kOn, &store});
    first_batch_hits = store.Stats().Delta(before).hits;
  });
  load_seconds = SecondsPerRun([&] {
    memo::Store store(4096);
    auto rstats = memo::DeserializeSnapshot(image, store);
    benchmark::DoNotOptimize(rstats.entries);
  });

  for (auto _ : state) {
    memo::Store store(4096);
    memo::SnapshotIoStats rstats = memo::DeserializeSnapshot(image, store);
    benchmark::DoNotOptimize(rstats.entries);
    run_first_batch({memo::Use::kOn, &store});
  }

  state.counters["warm_boot_speedup"] =
      warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0;
  state.counters["snapshot_entries"] = static_cast<double>(restored);
  state.counters["snapshot_bytes"] = static_cast<double>(image.size());
  state.counters["snapshot_load_ms"] = load_seconds * 1e3;
  state.counters["first_batch_hits"] = static_cast<double>(first_batch_hits);
}
BENCHMARK(BM_MemoSnapshotWarmBoot)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("memo");
