#include "chase/view_inverse.h"

#include <map>
#include <string>

#include "base/check.h"
#include "guard/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef VQDR_MEMO_DISABLED
#include <memory>

#include "cq/fingerprint.h"
#include "data/serialize.h"
#include "memo/snapshot.h"
#include "memo/store.h"
#endif

namespace vqdr {

Schema ChaseSchema(const ViewSet& views, const Schema& base) {
  Schema schema = base;
  for (const View& v : views.views()) {
    schema = schema.UnionWith(v.query.AsCq().BodySchema());
  }
  return schema;
}

namespace {

#ifndef VQDR_MEMO_DISABLED
/// A cached inverse plus the factory state after the call, so a hit replays
/// the exact minting of the original computation.
struct CachedInverse {
  Instance result;
  std::int64_t end_next_id = 0;
};

// Snapshot codec (DESIGN.md §14): the instance plus the recorded factory
// end state, so a warm-boot hit replays the same minting as the original.
std::string EncodeCachedInverse(const CachedInverse& cached) {
  wire::Encoder enc;
  EncodeInstance(cached.result, enc);
  enc.I64(cached.end_next_id);
  return enc.Take();
}

std::shared_ptr<const CachedInverse> DecodeCachedInverse(
    std::string_view payload) {
  wire::Decoder dec(payload);
  auto cached = std::make_shared<CachedInverse>();
  if (!DecodeInstance(dec, &cached->result)) return nullptr;
  cached->end_next_id = dec.I64();
  if (!dec.ok() || !dec.AtEnd()) return nullptr;
  return cached;
}

[[maybe_unused]] const bool kInverseCodecRegistered =
    memo::RegisterSnapshotType<CachedInverse>(
        "chase.vinv.v1", EncodeCachedInverse, DecodeCachedInverse);
#endif

Instance ViewInverseImpl(const ViewSet& views, const Instance& base,
                         const Instance& s_prime, ValueFactory& factory,
                         guard::Budget* budget);

}  // namespace

Instance ViewInverse(const ViewSet& views, const Instance& base,
                     const Instance& s_prime, ValueFactory& factory,
                     guard::Budget* budget) {
#ifndef VQDR_MEMO_DISABLED
  if (memo::Enabled()) {
    VQDR_TRACE_SPAN("memo.chase.view_inverse");
    // Exact key: the result carries concrete minted ids, so both input
    // digests and the factory state must match for a replay.
    std::string key = "chase.vinv|" + views.ToString() + "|" +
                      InstanceMemoKey(base) + "|" + InstanceMemoKey(s_prime) +
                      "|F" + std::to_string(factory.next_id());
    memo::Store& store = memo::GlobalStore();
    if (auto hit = store.Get<CachedInverse>(key)) {
      factory.NoteUsed(Value(hit->end_next_id - 1));
      return hit->result;
    }
    Instance result = ViewInverseImpl(views, base, s_prime, factory, budget);
    // A budget-stopped inverse is partial; a thrown fault never reaches this
    // line. Only complete results are installed.
    if (budget == nullptr || !budget->Stopped()) {
      store.Put(key, CachedInverse{result, factory.next_id()});
    }
    return result;
  }
#endif
  return ViewInverseImpl(views, base, s_prime, factory, budget);
}

namespace {

Instance ViewInverseImpl(const ViewSet& views, const Instance& base,
                         const Instance& s_prime, ValueFactory& factory,
                         guard::Budget* budget) {
  VQDR_COUNTER_INC("chase.view_inverse.calls");
  VQDR_TRACE_SPAN("chase.view_inverse");
  VQDR_CHECK(views.AllPureCq()) << "ViewInverse requires pure CQ views";

  // Result starts as a copy of the base over the widened schema.
  Instance result(ChaseSchema(views, base.schema()));
  for (const RelationDecl& d : base.schema().decls()) {
    result.Set(d.name, base.Get(d.name));
  }

  // Everything already present must not collide with fresh values.
  factory.NoteUsed(Value(base.MaxValueId()));
  factory.NoteUsed(Value(s_prime.MaxValueId()));
  // Constants of the view definitions enter the result through resolve()
  // exactly like pre-existing values, but need not occur in base or s_prime:
  // a view whose body mentions a constant only contributes it when its head
  // matches a new tuple. A fresh value colliding with such a constant would
  // alias a chase null to a dom constant and corrupt every later level, so
  // advance past all of them up front.
  for (const View& v : views.views()) {
    for (Value c : v.query.AsCq().Constants()) factory.NoteUsed(c);
  }

  Instance s = views.Apply(base);

  for (const View& view : views.views()) {
    const ConjunctiveQuery& q = view.query.AsCq();
    const Relation& new_tuples = s_prime.Get(view.name);
    const Relation& old_tuples = s.Get(view.name);
    for (const Tuple& y : new_tuples.tuples()) {
      if (old_tuples.Contains(y)) continue;  // already witnessed by base
      if (!guard::IsComplete(guard::Check(budget))) return result;
      VQDR_FAULT_ALLOC("chase.view_inverse");
      VQDR_COUNTER_INC("chase.view_inverse.tuples_chased");

      // α_ȳ: unify the head terms with ȳ.
      std::map<std::string, Value> alpha;
      for (std::size_t i = 0; i < y.size(); ++i) {
        const Term& t = q.head_terms()[i];
        if (t.is_const()) {
          VQDR_CHECK(t.constant() == y[i])
              << "view tuple disagrees with head constant of " << view.name;
          continue;
        }
        auto it = alpha.find(t.var());
        if (it != alpha.end()) {
          VQDR_CHECK(it->second == y[i])
              << "view tuple disagrees with repeated head variable of "
              << view.name;
        } else {
          alpha.emplace(t.var(), y[i]);
        }
      }
      // Non-head variables map to fresh distinct values (per tuple).
      std::map<std::string, Value> fresh;
      auto resolve = [&](const Term& t) -> Value {
        if (t.is_const()) return t.constant();
        auto it = alpha.find(t.var());
        if (it != alpha.end()) return it->second;
        auto fit = fresh.find(t.var());
        if (fit != fresh.end()) return fit->second;
        Value v = factory.Fresh();
        fresh.emplace(t.var(), v);
        return v;
      };
      for (const Atom& atom : q.atoms()) {
        Tuple fact;
        fact.reserve(atom.args.size());
        for (const Term& t : atom.args) fact.push_back(resolve(t));
        result.AddFact(atom.predicate, fact);
      }
      if (!guard::IsComplete(guard::CheckAtoms(budget, q.atoms().size()))) {
        return result;
      }
      VQDR_COUNTER_ADD("chase.view_inverse.facts_added", q.atoms().size());
    }
  }
  VQDR_HISTOGRAM_RECORD("chase.view_inverse.result_size", result.TupleCount());
  return result;
}

}  // namespace

}  // namespace vqdr
