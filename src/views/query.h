#ifndef VQDR_VIEWS_QUERY_H_
#define VQDR_VIEWS_QUERY_H_

#include <string>
#include <variant>

#include "cq/conjunctive_query.h"
#include "cq/ucq.h"
#include "datalog/program.h"
#include "fo/formula.h"

namespace vqdr {

/// A query in any of the paper's languages (Figure 1), with a uniform
/// evaluation interface. Used as the definition language for views and for
/// queries whose determinacy/rewriting is analysed.
class Query {
 public:
  enum class Language {
    kCq,       // possibly with =, ≠, ¬ — see Flavour()
    kUcq,
    kFo,
    kDatalog,
    kComputable,  // arbitrary computable query (Turing constructions, Q_V)
  };

  static Query FromCq(ConjunctiveQuery q) { return Query(std::move(q)); }
  static Query FromUcq(UnionQuery q) { return Query(std::move(q)); }
  static Query FromFo(FoQuery q) { return Query(std::move(q)); }

  /// A Datalog query: program plus designated output predicate.
  static Query FromDatalog(DatalogProgram program, std::string output);

  /// An arbitrary computable query (the most general class the paper's
  /// definitions range over — used for the Theorem 5.1 construction and for
  /// induced mappings Q_V). The function must be generic; the library's
  /// property checks can probe that but not enforce it.
  static Query FromFunction(int arity,
                            std::function<Relation(const Instance&)> fn,
                            std::string description);

  Language language() const;

  /// Output arity.
  int arity() const;

  /// Evaluates on a finite instance. Datalog evaluation failures (unsafe /
  /// unstratified programs) abort — validate programs before wrapping.
  Relation Eval(const Instance& db) const;

  /// Fine-grained classification string: "CQ", "CQ≠", "UCQ=", "∃FO", "FO",
  /// "Datalog", "Datalog¬", …
  std::string Flavour() const;

  /// True if the query is syntactically monotone (CQ/UCQ without negation
  /// or disequality; positive Datalog; not checked semantically for FO).
  bool IsSyntacticallyMonotone() const;

  /// True if the query is in the ∃FO fragment (CQ/UCQ always; FO by
  /// polarity check; Datalog never, conservatively).
  bool IsExistential() const;

  // Accessors; abort if the language does not match.
  const ConjunctiveQuery& AsCq() const;
  const UnionQuery& AsUcq() const;
  const FoQuery& AsFo() const;
  const DatalogProgram& AsDatalog() const;
  const std::string& DatalogOutput() const;

  std::string ToString() const;

 private:
  explicit Query(ConjunctiveQuery q) : impl_(std::move(q)) {}
  explicit Query(UnionQuery q) : impl_(std::move(q)) {}
  explicit Query(FoQuery q) : impl_(std::move(q)) {}

  struct DatalogQuery {
    DatalogProgram program;
    std::string output;
    int arity = 0;
  };
  explicit Query(DatalogQuery q) : impl_(std::move(q)) {}

  struct ComputableQuery {
    int arity = 0;
    std::function<Relation(const Instance&)> fn;
    std::string description;
  };
  explicit Query(ComputableQuery q) : impl_(std::move(q)) {}

  std::variant<ConjunctiveQuery, UnionQuery, FoQuery, DatalogQuery,
               ComputableQuery>
      impl_;
};

}  // namespace vqdr

#endif  // VQDR_VIEWS_QUERY_H_
