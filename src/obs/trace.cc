#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>

#include "obs/context.h"
#include "obs/metrics.h"

namespace vqdr::obs {

namespace {

struct TraceState {
  std::mutex mu;
  std::deque<TraceEvent> ring;
  std::ofstream sink;
  bool sink_open = false;
  std::chrono::steady_clock::time_point epoch;
  bool epoch_set = false;

  static TraceState& Get() {
    static TraceState* s = new TraceState;  // leaked: outlives static dtors
    return *s;
  }
};

// Single-branch gate read by every span constructor.
std::atomic<bool> g_enabled{false};

// Lazily applies VQDR_TRACE once per process, before the first gate read.
std::once_flag g_env_once;

void InitFromEnv() {
  const char* path = std::getenv("VQDR_TRACE");
  if (path != nullptr && path[0] != '\0') SetTraceSinkPath(path);
}

std::uint64_t MicrosSinceEpochLocked(TraceState& s) {
  auto now = std::chrono::steady_clock::now();
  if (!s.epoch_set) {
    s.epoch = now;
    s.epoch_set = true;
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - s.epoch)
          .count());
}

thread_local int t_depth = 0;

// Dense per-thread ids for trace grouping; 0 means "not assigned yet".
std::atomic<std::uint32_t> g_next_tid{1};
thread_local std::uint32_t t_tid = 0;

void WriteSinkLine(TraceState& s, const TraceEvent& e) {
  std::string line = "{\"name\":";
  internal::AppendJsonString(e.name, &line);
  if (e.has_arg) {
    line += ",\"arg\":";
    line += std::to_string(e.arg);
  }
  line += ",\"start_us\":";
  line += std::to_string(e.start_us);
  line += ",\"dur_us\":";
  line += std::to_string(e.dur_us);
  line += ",\"tid\":";
  line += std::to_string(e.tid);
  line += ",\"depth\":";
  line += std::to_string(e.depth);
  line += ",\"op\":";
  line += std::to_string(e.op);
  line += "}\n";
  s.sink << line;
  s.sink.flush();
}

}  // namespace

bool TracingEnabled() {
  std::call_once(g_env_once, InitFromEnv);
  return g_enabled.load(std::memory_order_relaxed);
}

void EnableTracing() { g_enabled.store(true, std::memory_order_relaxed); }

void DisableTracing() {
  g_enabled.store(false, std::memory_order_relaxed);
  CloseTraceSink();
}

bool SetTraceSinkPath(const std::string& path) {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink_open) {
    s.sink.close();
    s.sink_open = false;
  }
  s.sink.open(path, std::ios::out | std::ios::trunc);
  if (!s.sink) return false;
  s.sink_open = true;
  g_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void CloseTraceSink() {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink_open) {
    s.sink.flush();
    s.sink.close();
    s.sink_open = false;
  }
}

std::uint32_t CurrentTraceTid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

std::vector<TraceEvent> DrainTraceEvents() {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<TraceEvent> out(s.ring.begin(), s.ring.end());
  s.ring.clear();
  return out;
}

TraceSpan::TraceSpan(const char* name) : name_(name) { Begin(); }

TraceSpan::TraceSpan(const char* name, std::int64_t arg)
    : name_(name), arg_(arg), has_arg_(true) {
  Begin();
}

// Publishes the span to the live telemetry layer — the thread's span stack
// (read by registry/watchdog snapshots) and the op's current phase — when an
// operation is bound. Runs whether or not tracing records events: --ops and
// stall reports must show phases on untraced production runs. With no op
// bound the cost is one thread-local load.
void TraceSpan::LiveBegin() {
#ifndef VQDR_OBS_DISABLED
  internal::OpSlot* op = internal::t_current_op;
  if (op == nullptr) return;
  live_ = true;
  internal::ThreadSlot* slot = internal::EnsureThreadSlot();
  int d = slot->depth.load(std::memory_order_relaxed);
  if (d >= 0 && d < kThreadStackDepth) {
    slot->names[d].store(name_, std::memory_order_relaxed);
  }
  slot->depth.store(d + 1, std::memory_order_release);
  op->phase.store(name_, std::memory_order_relaxed);
#endif
}

void TraceSpan::LiveEnd() {
#ifndef VQDR_OBS_DISABLED
  internal::ThreadSlot* slot = internal::EnsureThreadSlot();
  int d = slot->depth.load(std::memory_order_relaxed) - 1;
  if (d < 0) d = 0;
  slot->depth.store(d, std::memory_order_release);
  // Phase falls back to the enclosing span on this thread, or the op label
  // at top level. Cross-thread phase writes race benignly (last writer
  // wins): the field means "an innermost live span", not a total order.
  internal::OpSlot* op = internal::t_current_op;
  if (op == nullptr) return;
  const char* parent = nullptr;
  if (d > 0 && d <= kThreadStackDepth) {
    parent = slot->names[d - 1].load(std::memory_order_relaxed);
  }
  op->phase.store(parent != nullptr ? parent : op->label,
                  std::memory_order_relaxed);
#endif
}

void TraceSpan::Begin() {
  LiveBegin();
  if (!TracingEnabled()) return;
  active_ = true;
  depth_ = t_depth++;
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  start_us_ = MicrosSinceEpochLocked(s);
}

TraceSpan::~TraceSpan() {
  if (live_) LiveEnd();
  if (!active_) return;
  --t_depth;
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> lock(s.mu);
  TraceEvent e;
  e.name = name_;
  e.arg = arg_;
  e.has_arg = has_arg_;
  e.start_us = start_us_;
  e.dur_us = MicrosSinceEpochLocked(s) - start_us_;
  e.tid = CurrentTraceTid();
  e.depth = depth_;
  e.op = CurrentOpId();
  if (s.ring.size() >= kTraceRingCapacity) s.ring.pop_front();
  if (s.sink_open) WriteSinkLine(s, e);
  s.ring.push_back(std::move(e));
}

}  // namespace vqdr::obs
