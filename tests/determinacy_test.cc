// Tests for the paper's core decision procedures: unrestricted CQ
// determinacy (Theorem 3.7), rewriting synthesis (Theorem 3.3 /
// Proposition 3.5, LMSS [22]), and their agreement with brute-force
// finite searches.

#include <gtest/gtest.h>

#include "core/determinacy.h"
#include "core/finite_search.h"
#include "core/genericity.h"
#include "core/rewriting.h"
#include "cq/containment.h"
#include "cq/matcher.h"
#include "cq/parser.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

class DeterminacyFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return q.value();
  }

  ViewSet CqViews(const std::vector<std::string>& defs) {
    ViewSet views;
    for (const std::string& def : defs) {
      ConjunctiveQuery q = Cq(def);
      views.Add(q.head_name(), Query::FromCq(q));
    }
    return views;
  }

  NamePool pool_;
};

TEST_F(DeterminacyFixture, IdentityViewDeterminesEverything) {
  ViewSet views = CqViews({"V(x, y) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");
  auto result = DecideUnrestrictedDeterminacy(views, q);
  EXPECT_TRUE(result.determined);
  ASSERT_TRUE(result.canonical_rewriting.has_value());
  // The rewriting evaluates correctly on concrete instances.
  Instance d = PathInstance(5);
  Relation direct = EvaluateCq(q, d);
  Relation via = EvaluateCq(*result.canonical_rewriting, views.Apply(d));
  EXPECT_EQ(direct, via);
}

TEST_F(DeterminacyFixture, Path2ViewAloneDoesNotDeterminePath3) {
  // V = paths of length 2; Q = paths of length 3: the classical
  // non-determined example (the view loses the parity anchoring).
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");
  EXPECT_FALSE(DecideUnrestrictedDeterminacy(views, q).determined);
}

TEST_F(DeterminacyFixture, Path1AndPath2DeterminePath3) {
  // With P1 = E exposed, Q = E∘E∘E rewrites as P1 ∘ P2 (or P2 ∘ P1).
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)",
                           "P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");
  auto result = DecideUnrestrictedDeterminacy(views, q);
  EXPECT_TRUE(result.determined);

  CqRewritingResult rewriting = FindCqRewriting(views, q);
  ASSERT_TRUE(rewriting.exists);
  // Greedy minimisation reaches an irreducible rewriting: either the
  // 2-atom P1∘P2 join or the 3-atom P1 chain, depending on removal order.
  EXPECT_LE(rewriting.rewriting->atoms().size(), 3u);
  EXPECT_TRUE(
      CqEquivalent(ExpandRewriting(*rewriting.rewriting, views), q));
}

TEST_F(DeterminacyFixture, Path2AndPath3DoNotDeterminePath1InUnrestricted) {
  // The famous open-flavoured example: V = {P2, P3}. In the unrestricted
  // case the chase test settles it: not determined... but actually P2 and
  // P3 DO determine P4 = P1∘P3; here we ask for Q = P1 itself, which the
  // chase test refutes.
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)",
                           "P3(x, y) :- E(x, a), E(a, b), E(b, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, y)");
  EXPECT_FALSE(DecideUnrestrictedDeterminacy(views, q).determined);
}

TEST_F(DeterminacyFixture, Path2AndPath3DeterminePath4ViaRewriting) {
  // P4 = P2 ∘ P2 — an easy rewriting, so determinacy must hold and the
  // synthesiser must find a 2-atom rewriting.
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)",
                           "P3(x, y) :- E(x, a), E(a, b), E(b, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, c), E(c, y)");
  auto result = DecideUnrestrictedDeterminacy(views, q);
  EXPECT_TRUE(result.determined);
  CqRewritingResult rewriting = FindCqRewriting(views, q);
  ASSERT_TRUE(rewriting.exists);
  EXPECT_EQ(rewriting.rewriting->atoms().size(), 2u);
  for (const Atom& a : rewriting.rewriting->atoms()) {
    EXPECT_EQ(a.predicate, "P2");
  }
}

TEST_F(DeterminacyFixture, Path2AndPath3DeterminePath5) {
  // P5 = P2 ∘ P3.
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)",
                           "P3(x, y) :- E(x, a), E(a, b), E(b, y)"});
  ConjunctiveQuery q = ChainQuery(5);
  auto result = DecideUnrestrictedDeterminacy(views, q);
  EXPECT_TRUE(result.determined);
}

TEST_F(DeterminacyFixture, BooleanQueryDeterminedByItsOwnView) {
  ViewSet views = CqViews({"V() :- E(x, x)"});
  ConjunctiveQuery q = Cq("Q() :- E(y, y)");
  auto result = DecideUnrestrictedDeterminacy(views, q);
  EXPECT_TRUE(result.determined);
}

TEST_F(DeterminacyFixture, ConstantsInQueryAndViews) {
  ViewSet views = CqViews({"V(x) :- E('a', x)"});
  ConjunctiveQuery q = Cq("Q(x) :- E('a', x)");
  EXPECT_TRUE(DecideUnrestrictedDeterminacy(views, q).determined);
  ConjunctiveQuery q2 = Cq("Q(x) :- E('b', x)");
  EXPECT_FALSE(DecideUnrestrictedDeterminacy(views, q2).determined);
}

TEST_F(DeterminacyFixture, ProjectionViewLosesInformation) {
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, y)");
  EXPECT_FALSE(DecideUnrestrictedDeterminacy(views, q).determined);
}

TEST_F(DeterminacyFixture, UnrestrictedDeterminacyImpliesNoFiniteCounterexample) {
  // Soundness cross-check: whenever the chase test says "determined", the
  // exhaustive finite search over small instances must find no refutation.
  std::vector<std::pair<std::vector<std::string>, std::string>> cases = {
      {{"V(x, y) :- E(x, y)"}, "Q(x, y) :- E(x, z), E(z, y)"},
      {{"P1(x, y) :- E(x, y)", "P2(x, y) :- E(x, z), E(z, y)"},
       "Q(x, y) :- E(x, a), E(a, b), E(b, y)"},
      {{"V() :- E(x, x)"}, "Q() :- E(y, y)"},
  };
  for (const auto& [defs, qtext] : cases) {
    ViewSet views = CqViews(defs);
    ConjunctiveQuery q = Cq(qtext);
    ASSERT_TRUE(DecideUnrestrictedDeterminacy(views, q).determined);
    EnumerationOptions options;
    options.domain_size = 2;
    auto search = SearchDeterminacyCounterexample(
        views, Query::FromCq(q), Schema{{"E", 2}}, options);
    EXPECT_EQ(search.verdict, SearchVerdict::kNoneWithinBound) << qtext;
  }
}

TEST_F(DeterminacyFixture, FiniteSearchRefutesNonDeterminedCase) {
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, y)");
  EnumerationOptions options;
  options.domain_size = 2;
  auto search = SearchDeterminacyCounterexample(views, Query::FromCq(q),
                                                Schema{{"E", 2}}, options);
  ASSERT_EQ(search.verdict, SearchVerdict::kCounterexampleFound);
  const auto& ce = *search.counterexample;
  EXPECT_EQ(views.Apply(ce.d1), views.Apply(ce.d2));
  EXPECT_NE(EvaluateCq(q, ce.d1), EvaluateCq(q, ce.d2));
}

TEST_F(DeterminacyFixture, RewritingExistenceMatchesDeterminacy) {
  // Theorem 3.3: in the unrestricted case determinacy and CQ-rewriting
  // existence coincide; sweep a family of view/query combinations.
  for (int view_len = 1; view_len <= 3; ++view_len) {
    for (int query_len = 1; query_len <= 4; ++query_len) {
      ViewSet views = PathViews(view_len);
      ConjunctiveQuery q = ChainQuery(query_len);
      bool determined = DecideUnrestrictedDeterminacy(views, q).determined;
      bool rewritable = FindCqRewriting(views, q).exists;
      EXPECT_EQ(determined, rewritable)
          << "views=P1..P" << view_len << " query=chain" << query_len;
      // With P1 present, every chain query is determined.
      EXPECT_TRUE(determined);
    }
  }
}

TEST_F(DeterminacyFixture, ExpandRewritingUnfoldsViews) {
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery r = Cq("Q(x, y) :- P2(x, u), P2(u, y)");
  ConjunctiveQuery expansion = ExpandRewriting(r, views);
  EXPECT_EQ(expansion.atoms().size(), 4u);
  EXPECT_TRUE(CqEquivalent(expansion, ChainQuery(4)));
}

TEST_F(DeterminacyFixture, ExpandRewritingHandlesRepeatedHeadVars) {
  ViewSet views = CqViews({"V(x, x) :- E(x, x)"});
  ConjunctiveQuery r = Cq("Q(a, b) :- V(a, b)");
  ConjunctiveQuery expansion = ExpandRewriting(r, views);
  // The repeated head variable forces a = b in the expansion.
  Instance d(Schema{{"E", 2}});
  d.AddFact("E", MakeTuple({1, 1}));
  d.AddFact("E", MakeTuple({1, 2}));
  Relation answer = EvaluateCq(expansion, d);
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains(MakeTuple({1, 1})));
}

TEST_F(DeterminacyFixture, ValidateRewritingAcceptsAndRejects) {
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");
  ConjunctiveQuery good = Cq("Q(x, y) :- P1(x, z), P1(z, y)");
  ConjunctiveQuery bad = Cq("Q(x, y) :- P1(x, y)");
  EnumerationOptions options;
  options.domain_size = 2;
  Schema base{{"E", 2}};
  EXPECT_TRUE(ValidateRewriting(views, Query::FromCq(q), Query::FromCq(good),
                                base, options)
                  .valid);
  auto rejected = ValidateRewriting(views, Query::FromCq(q),
                                    Query::FromCq(bad), base, options);
  EXPECT_FALSE(rejected.valid);
  EXPECT_TRUE(rejected.counterexample.has_value());
}

TEST_F(DeterminacyFixture, UcqRewritingOfUcqQuery) {
  ViewSet views = CqViews({"VA(x) :- A(x)", "VB(x) :- B(x)"});
  auto q = ParseUcq("Q(x) :- A(x) | Q(x) :- B(x)", pool_);
  ASSERT_TRUE(q.ok());
  UcqRewritingResult result = FindUcqRewriting(views, q.value());
  ASSERT_TRUE(result.exists);
  UnionQuery expansion = ExpandUcqRewriting(*result.rewriting, views);
  EXPECT_TRUE(UcqEquivalent(expansion, q.value()));
}

TEST_F(DeterminacyFixture, UcqRewritingFailsWhenViewsTooWeak) {
  ViewSet views = CqViews({"VA(x) :- A(x)"});
  auto q = ParseUcq("Q(x) :- A(x) | Q(x) :- B(x)", pool_);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(FindUcqRewriting(views, q.value()).exists);
}

TEST_F(DeterminacyFixture, GenericityChecksOnDeterminedPair) {
  // Proposition 4.3 necessary conditions hold on concrete instances for a
  // determined pair.
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, z), E(z, y)"));
  for (int n = 2; n <= 4; ++n) {
    Instance d = PathInstance(n);
    EXPECT_TRUE(CheckAnswerDomainContained(views, q, d));
    EXPECT_TRUE(CheckAutomorphismsPreserved(views, q, d));
  }
}

TEST_F(DeterminacyFixture, GenericityViolationRefutesDeterminacy) {
  // A projection view hides the second column; the answer-domain condition
  // fails on instances where Q exports hidden values.
  ViewSet views = CqViews({"V(x) :- E(x, y)"});
  Query q = Query::FromCq(Cq("Q(x, y) :- E(x, y)"));
  Instance d = PathInstance(3);  // E(1,2), E(2,3): 3 hidden from V
  EXPECT_FALSE(CheckAnswerDomainContained(views, q, d));
}

TEST_F(DeterminacyFixture, MinimizedRewritingStillRewrites) {
  ViewSet views = PathViews(3);
  for (int len = 1; len <= 5; ++len) {
    ConjunctiveQuery q = ChainQuery(len);
    CqRewritingResult result = FindCqRewriting(views, q);
    ASSERT_TRUE(result.exists) << "chain " << len;
    EXPECT_TRUE(CqEquivalent(ExpandRewriting(*result.rewriting, views), q));
    // And semantically on instances.
    EnumerationOptions options;
    options.domain_size = 2;
    EXPECT_TRUE(ValidateRewriting(views, Query::FromCq(q),
                                  Query::FromCq(*result.rewriting),
                                  Schema{{"E", 2}}, options)
                    .valid);
  }
}

// --- Golden verdict+witness fixtures (DESIGN.md §12) ---
//
// Recorded from the seed matcher. The canonical rewriting and the
// containment witness below are byte-products of the matcher's enumeration
// order (the chase picks the FIRST hom it finds), so any engine change that
// shifts the order — even to an equally valid hom — breaks these fixtures.

TEST_F(DeterminacyFixture, GoldenCanonicalRewritingBytes) {
  ViewSet views = CqViews({"P1(x, y) :- E(x, y)",
                           "P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");
  auto result = DecideUnrestrictedDeterminacy(views, q);
  ASSERT_TRUE(result.determined);
  ASSERT_TRUE(result.canonical_rewriting.has_value());
  EXPECT_EQ(result.canonical_rewriting->ToString(), "Q(v1, v4) :- P1(v1, v2), P1(v2, v3), P1(v3, v4), "
            "P2(v1, v3), P2(v2, v4)");
}

TEST_F(DeterminacyFixture, GoldenDeterminacyVerdictBattery) {
  // Verdicts recorded from the seed: byte-stable regardless of engine.
  ViewSet p2 = CqViews({"P2(x, y) :- E(x, z), E(z, y)"});
  ViewSet p1p2 = CqViews({"P1(x, y) :- E(x, y)",
                          "P2(x, y) :- E(x, z), E(z, y)"});
  ViewSet p2p3 = CqViews({"P2(x, y) :- E(x, z), E(z, y)",
                          "P3(x, y) :- E(x, a), E(a, b), E(b, y)"});
  ConjunctiveQuery p3q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");
  ConjunctiveQuery p4q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, c), E(c, y)");
  ConjunctiveQuery p1q = Cq("Q(x, y) :- E(x, y)");
  EXPECT_FALSE(DecideUnrestrictedDeterminacy(p2, p3q).determined);
  EXPECT_TRUE(DecideUnrestrictedDeterminacy(p1p2, p3q).determined);
  EXPECT_TRUE(DecideUnrestrictedDeterminacy(p2p3, p4q).determined);
  EXPECT_FALSE(DecideUnrestrictedDeterminacy(p2p3, p1q).determined);
}

}  // namespace
}  // namespace vqdr
