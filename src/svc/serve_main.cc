// vqdr-serve: long-running determinacy service over a Unix-domain socket.
//
// Usage:
//   vqdr-serve --socket=/tmp/vqdr.sock [--threads=N] [--queue-limit=N]
//              [--idle-timeout-ms=N] [--drain-timeout-ms=N]
//              [--memo-snapshot=PATH] [--memo-flush-ms=N]
//              [--class=name:max_concurrent:wall_ms:max_steps:max_atoms]...
//
// SIGTERM/SIGINT trigger drain-then-exit: the listener stops accepting,
// in-flight requests finish (bounded by --drain-timeout-ms), then the
// process exits 0. Each --class defines a tenant admission class; requests
// carry "tenant" to pick one (unknown tenants fall back to "default").
//
// --memo-snapshot (or the VQDR_MEMO_SNAPSHOT environment variable) makes
// the memo store survive restarts: loaded at boot, flushed every
// --memo-flush-ms (0 = only at drain and on the "snapshot" control op),
// and written one final time after the SIGTERM drain completes.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "guard/classes.h"
#include "svc/server.h"
#include "svc/service.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char b = 1;
  (void)!::write(g_signal_pipe[1], &b, 1);
}

bool ParseLongField(const std::string& text, long long* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

// name:max_concurrent:wall_ms:max_steps:max_atoms — trailing fields optional.
bool ParseClassSpec(const std::string& text,
                    vqdr::guard::BudgetClassSpec* out) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t colon = text.find(':', start);
    parts.push_back(text.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.empty() || parts[0].empty() || parts.size() > 5) return false;
  out->name = parts[0];
  long long v = 0;
  if (parts.size() > 1) {
    if (!ParseLongField(parts[1], &v) || v < 0) return false;
    out->max_concurrent = static_cast<int>(v);
  }
  if (parts.size() > 2) {
    if (!ParseLongField(parts[2], &v)) return false;
    out->cap.wall_ms = v;
  }
  if (parts.size() > 3) {
    if (!ParseLongField(parts[3], &v) || v < 0) return false;
    out->cap.max_steps = static_cast<std::uint64_t>(v);
  }
  if (parts.size() > 4) {
    if (!ParseLongField(parts[4], &v) || v < 0) return false;
    out->cap.max_atoms = static_cast<std::uint64_t>(v);
  }
  return true;
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket=PATH [--threads=N] [--queue-limit=N]\n"
      "          [--idle-timeout-ms=N] [--drain-timeout-ms=N]\n"
      "          [--memo-snapshot=PATH] [--memo-flush-ms=N]\n"
      "          [--class=name:max_concurrent:wall_ms:max_steps:max_atoms]...\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  vqdr::svc::ServiceOptions service_options;
  vqdr::svc::ServerOptions server_options;
  std::vector<vqdr::guard::BudgetClassSpec> classes;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      std::size_t n = std::strlen(prefix);
      if (arg.compare(0, n, prefix) == 0) return arg.c_str() + n;
      return nullptr;
    };
    long long v = 0;
    if (const char* val = value_of("--socket=")) {
      server_options.socket_path = val;
    } else if (const char* val = value_of("--threads=")) {
      if (!ParseLongField(val, &v) || v < 0) {
        Usage(argv[0]);
        return 2;
      }
      service_options.threads = static_cast<int>(v);
    } else if (const char* val = value_of("--queue-limit=")) {
      if (!ParseLongField(val, &v) || v < 1) {
        Usage(argv[0]);
        return 2;
      }
      service_options.queue_limit = static_cast<int>(v);
    } else if (const char* val = value_of("--idle-timeout-ms=")) {
      if (!ParseLongField(val, &v) || v < 0) {
        Usage(argv[0]);
        return 2;
      }
      server_options.idle_timeout_ms = static_cast<std::uint64_t>(v);
    } else if (const char* val = value_of("--drain-timeout-ms=")) {
      if (!ParseLongField(val, &v) || v < 0) {
        Usage(argv[0]);
        return 2;
      }
      server_options.drain_timeout_ms = static_cast<std::uint64_t>(v);
    } else if (const char* val = value_of("--memo-snapshot=")) {
      service_options.memo_snapshot_path = val;
    } else if (const char* val = value_of("--memo-flush-ms=")) {
      if (!ParseLongField(val, &v) || v < 0) {
        Usage(argv[0]);
        return 2;
      }
      service_options.memo_flush_ms = static_cast<std::uint64_t>(v);
    } else if (const char* val = value_of("--class=")) {
      vqdr::guard::BudgetClassSpec spec;
      if (!ParseClassSpec(val, &spec)) {
        std::fprintf(stderr, "bad --class spec: %s\n", val);
        return 2;
      }
      classes.push_back(std::move(spec));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (server_options.socket_path.empty()) {
    Usage(argv[0]);
    return 2;
  }

  if (::pipe(g_signal_pipe) < 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a dead client must not kill the daemon

  vqdr::svc::Service service(service_options);
  for (vqdr::guard::BudgetClassSpec& spec : classes) {
    service.classes().Define(std::move(spec));
  }
  vqdr::svc::Server server(service, server_options);
  vqdr::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "vqdr-serve: %s\n", started.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "vqdr-serve: listening on %s (threads=%d)\n",
               server.socket_path().c_str(), service.options().threads);
  if (!service.memo_snapshot_path().empty()) {
    std::fprintf(stderr,
                 "vqdr-serve: memo snapshot at %s (flush every %llu ms)\n",
                 service.memo_snapshot_path().c_str(),
                 static_cast<unsigned long long>(
                     service.options().memo_flush_ms));
  }

  // Park until a signal arrives, then drain and exit.
  pollfd p{g_signal_pipe[0], POLLIN, 0};
  while (true) {
    int rc = ::poll(&p, 1, -1);
    if (rc > 0) break;
    if (rc < 0 && errno != EINTR) break;
  }
  std::fprintf(stderr, "vqdr-serve: draining (in_flight=%llu)\n",
               static_cast<unsigned long long>(service.in_flight()));
  server.Shutdown();
  const vqdr::svc::ServiceStats stats = service.stats();
  std::fprintf(stderr,
               "vqdr-serve: exit accepted=%llu completed=%llu "
               "overloaded=%llu draining=%llu\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.rejected_overloaded),
               static_cast<unsigned long long>(stats.rejected_draining));
  return 0;
}
