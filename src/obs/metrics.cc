#include "obs/metrics.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace vqdr::obs {

namespace {

// The registry maps names to heap-allocated metrics so references handed out
// by GetCounter/GetHistogram stay stable forever. Lookups take the mutex;
// the macro layer caches the reference per call site, so the mutex is off
// the hot path after the first hit.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  /// Dense per-op attribution ids, assigned in registration order. Index i
  /// names the counter behind OpMetricCells::cells[i].
  std::map<std::string, std::uint32_t, std::less<>> counter_ids;
  std::vector<std::string> counter_names_by_id;

  static Registry& Get() {
    static Registry* r = new Registry;  // leaked: outlives static dtors
    return *r;
  }
};

void AppendUint(std::uint64_t v, std::string* out) {
  out->append(std::to_string(v));
}

}  // namespace

void Histogram::Record(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[HistogramBucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th value, 1-based, rounded up so q=0.5 of 3 values is the
  // 2nd and q=1 is the last.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      std::uint64_t bound = HistogramBucketUpperBound(i);
      return bound == UINT64_MAX ? max : (bound < max ? bound : max);
    }
  }
  return max;
}

Counter& GetCounter(std::string_view name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

namespace internal {
thread_local OpMetricCells* t_op_cells = nullptr;
}  // namespace internal

CounterSite GetCounterSite(std::string_view name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  auto id_it = r.counter_ids.find(name);
  if (id_it == r.counter_ids.end()) {
    std::uint32_t id = kOpCounterUnattributed;
    if (r.counter_names_by_id.size() < kMaxOpCounters) {
      id = static_cast<std::uint32_t>(r.counter_names_by_id.size());
      r.counter_names_by_id.emplace_back(name);
    }
    id_it = r.counter_ids.emplace(std::string(name), id).first;
  }
  return CounterSite(it->second.get(), id_it->second);
}

std::vector<std::string> OpCounterNames() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.counter_names_by_id;
}

Histogram& GetHistogram(std::string_view name) {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot SnapshotMetrics() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : r.counters) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot hs;
    hs.count = h->count();
    if (hs.count > 0) {
      hs.sum = h->sum();
      hs.min = h->min();
      hs.max = h->max();
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        hs.buckets[i] = h->bucket(i);
      }
    }
    snap.histograms.emplace(name, hs);
  }
  return snap;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before) {
  MetricsSnapshot now = SnapshotMetrics();
  MetricsSnapshot delta;
  for (const auto& [name, value] : now.counters) {
    auto it = before.counters.find(name);
    std::uint64_t prev = it == before.counters.end() ? 0 : it->second;
    if (value > prev) delta.counters.emplace(name, value - prev);
  }
  for (const auto& [name, hs] : now.histograms) {
    auto it = before.histograms.find(name);
    std::uint64_t prev_count =
        it == before.histograms.end() ? 0 : it->second.count;
    std::uint64_t prev_sum = it == before.histograms.end() ? 0 : it->second.sum;
    if (hs.count > prev_count) {
      HistogramSnapshot d;
      d.count = hs.count - prev_count;
      d.sum = hs.sum - prev_sum;
      // min/max cannot be windowed from endpoints; report the cumulative
      // extremes, which still bound the window. Buckets are monotone
      // per-bucket counts, so they window exactly.
      d.min = hs.min;
      d.max = hs.max;
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        std::uint64_t prev_bucket =
            it == before.histograms.end() ? 0 : it->second.buckets[i];
        d.buckets[i] = hs.buckets[i] - prev_bucket;
      }
      delta.histograms.emplace(name, d);
    }
  }
  return delta;
}

void ResetMetrics() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, counter] : r.counters) counter->Reset();
  for (auto& [name, h] : r.histograms) h->Reset();
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    if (!out.empty()) out.push_back(' ');
    out += name;
    out.push_back('=');
    AppendUint(value, &out);
  }
  for (const auto& [name, hs] : histograms) {
    if (!out.empty()) out.push_back(' ');
    out += name;
    out += "{count=";
    AppendUint(hs.count, &out);
    out += ",sum=";
    AppendUint(hs.sum, &out);
    out += ",min=";
    AppendUint(hs.min, &out);
    out += ",max=";
    AppendUint(hs.max, &out);
    out += ",p50=";
    AppendUint(hs.ApproxQuantile(0.5), &out);
    out += ",p95=";
    AppendUint(hs.ApproxQuantile(0.95), &out);
    out += "}";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    internal::AppendJsonString(name, &out);
    out.push_back(':');
    AppendUint(value, &out);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hs] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    internal::AppendJsonString(name, &out);
    out += ":{\"count\":";
    AppendUint(hs.count, &out);
    out += ",\"sum\":";
    AppendUint(hs.sum, &out);
    out += ",\"min\":";
    AppendUint(hs.min, &out);
    out += ",\"max\":";
    AppendUint(hs.max, &out);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (i != 0) out.push_back(',');
      AppendUint(hs.buckets[i], &out);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace internal {

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace internal

}  // namespace vqdr::obs
