#ifndef VQDR_OBS_EXPLAIN_H_
#define VQDR_OBS_EXPLAIN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <mutex>

// Decision provenance for the solver stack. Engines that accept an
// `obs::ExplainLog*` append typed events describing *why* they answered:
// the witness homomorphism behind a containment verdict, the pattern
// instance behind a refutation, per-level chase sizes and fresh-null
// counts, the counterexample pair behind a finite-search refutation, memo
// hits, guard outcomes. The log serializes to a JSON artifact
// (`determinacy_tool --explain=out.json`) and parses back, and recorded
// witnesses re-verify by replay: ExplainWitness::Verify checks every
// binding-image fact against the recorded instance independently of the
// engine that produced it.
//
// Layering: obs sits below cq/data, so payloads here are generic —
// relations are strings, values are the int64 ids of data::Value. The
// cq-side conversion lives in cq/explain_bridge.h.
//
// Under -DVQDR_OBS=OFF the type stays real (pure serialization still
// works; reports keep their field) but kExplainEnabled is false and every
// engine recording site is guarded by obs::Wants(log), so provenance
// capture compiles out of the hot paths.

namespace vqdr::obs {

#ifdef VQDR_OBS_DISABLED
inline constexpr bool kExplainEnabled = false;
#else
inline constexpr bool kExplainEnabled = true;
#endif

/// One ground fact of a recorded instance: relation name + value ids.
struct ExplainFact {
  std::string relation;
  std::vector<std::int64_t> tuple;

  bool operator==(const ExplainFact& o) const {
    return relation == o.relation && tuple == o.tuple;
  }
};

/// A query term: a named variable or a constant value id.
struct ExplainTerm {
  bool is_var = false;
  std::string var;          // meaningful when is_var
  std::int64_t value = 0;   // meaningful when !is_var

  static ExplainTerm Var(std::string name) {
    ExplainTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static ExplainTerm Const(std::int64_t v) {
    ExplainTerm t;
    t.value = v;
    return t;
  }
};

/// One query atom: relation applied to terms.
struct ExplainAtom {
  std::string relation;
  std::vector<ExplainTerm> args;
};

/// A containment/decision witness: the homomorphism `binding` from the
/// query (atoms/head/disequalities) into `instance`, with the head tuple
/// it was required to produce. Self-contained — Verify replays it without
/// any engine code.
struct ExplainWitness {
  std::vector<ExplainAtom> atoms;
  std::vector<ExplainTerm> head;
  /// Disequality constraints (CQ(!=)); each pair must resolve to distinct
  /// values under the binding.
  std::vector<std::pair<ExplainTerm, ExplainTerm>> disequalities;
  /// Variable name -> value id. Must cover every variable in atoms/head.
  std::map<std::string, std::int64_t> binding;
  /// The target instance the homomorphism maps into.
  std::vector<ExplainFact> instance;
  /// The head tuple the engine claimed; Verify checks head resolves to it.
  std::vector<std::int64_t> expected_head;

  /// Replays the homomorphism: every atom's binding image must be a fact
  /// of `instance`, the head must resolve to `expected_head`, and every
  /// disequality must hold. On failure returns false and, if `error` is
  /// non-null, says which check broke.
  bool Verify(std::string* error = nullptr) const;
};

enum class ExplainKind {
  kNote,            // freeform annotation
  kChaseLevel,      // one level of the Theorem 3.3 chase chain
  kDecision,        // the final verdict of a decision procedure
  kWitness,         // a verdict backed by a homomorphism witness
  kRefutation,      // a containment pattern that failed (instance attached)
  kCounterexample,  // a finite-search counterexample instance (pair)
  kMemo,            // memo hit/miss for a decision subproblem
  kGuard,           // guard/budget outcome attribution
};

/// Stable lowercase name for serialization ("note", "chase_level", ...).
const char* ExplainKindName(ExplainKind kind);

/// Parses ExplainKindName output back; nullopt on unknown names.
std::optional<ExplainKind> ExplainKindFromName(std::string_view name);

/// One provenance event. `label` identifies the site ("cq.sub.pattern",
/// "determinacy.decision"); `stats` carries small named numbers (level,
/// sizes, fresh nulls); witness/instance/instance2 are optional payloads.
struct ExplainEvent {
  ExplainKind kind = ExplainKind::kNote;
  std::string label;
  std::string detail;
  std::map<std::string, std::int64_t> stats;
  std::optional<ExplainWitness> witness;
  /// Kind-dependent instance payload: the refuting pattern instance, or
  /// the first instance of a counterexample pair.
  std::vector<ExplainFact> instance;
  /// Second instance of a counterexample pair (agrees on views, differs
  /// on the query).
  std::vector<ExplainFact> instance2;
};

/// A thread-safe, copyable append log of ExplainEvents. Engines append
/// under an internal mutex (parallel sweeps share one log); readers take
/// a snapshot copy. Carried by value on DeterminacyReport.
class ExplainLog {
 public:
  ExplainLog() = default;
  ExplainLog(const ExplainLog& other);
  ExplainLog& operator=(const ExplainLog& other);
  ExplainLog(ExplainLog&& other) noexcept;
  ExplainLog& operator=(ExplainLog&& other) noexcept;

  void Append(ExplainEvent event);
  /// Shorthand for a kNote event.
  void Note(std::string label, std::string detail = "");

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  void Clear();

  /// Snapshot copy of the events, in append order.
  std::vector<ExplainEvent> events() const;

  /// {"explain":1,"events":[...]} — deterministic, self-contained.
  std::string ToJson() const;

  /// Parses ToJson output. Returns nullopt (with *error set, if given) on
  /// malformed input.
  static std::optional<ExplainLog> FromJson(std::string_view text,
                                            std::string* error = nullptr);

 private:
  mutable std::mutex mu_;
  std::vector<ExplainEvent> events_;
};

/// True when provenance capture is compiled in AND a log is attached.
/// Recording sites guard with `if (obs::Wants(log)) {...}` so the whole
/// branch folds away under -DVQDR_OBS=OFF.
inline bool Wants(const ExplainLog* log) {
  return kExplainEnabled && log != nullptr;
}

}  // namespace vqdr::obs

#endif  // VQDR_OBS_EXPLAIN_H_
