#ifndef VQDR_FO_FORMULA_H_
#define VQDR_FO_FORMULA_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cq/atom.h"
#include "data/schema.h"

namespace vqdr {

class FoFormula;
/// Formulas are immutable trees shared via shared_ptr.
using FoPtr = std::shared_ptr<const FoFormula>;

/// A first-order formula over a relational vocabulary, with equality and
/// constants from dom (Figure 1's FO). Built via the static factories;
/// evaluated with active-domain semantics (see fo/evaluator.h).
class FoFormula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,     // R(t1, …, tk)
    kEquals,   // t1 = t2
    kNot,
    kAnd,      // n-ary
    kOr,       // n-ary
    kImplies,  // binary
    kIff,      // binary
    kExists,   // ∃ vars . body
    kForall,   // ∀ vars . body
  };

  // --- Factories ---
  static FoPtr True();
  static FoPtr False();
  static FoPtr MakeAtom(Atom atom);
  static FoPtr Eq(Term lhs, Term rhs);
  static FoPtr Not(FoPtr child);
  static FoPtr And(std::vector<FoPtr> children);
  static FoPtr Or(std::vector<FoPtr> children);
  static FoPtr Implies(FoPtr lhs, FoPtr rhs);
  static FoPtr Iff(FoPtr lhs, FoPtr rhs);
  static FoPtr Exists(std::vector<std::string> vars, FoPtr body);
  static FoPtr Forall(std::vector<std::string> vars, FoPtr body);

  Kind kind() const { return kind_; }

  /// For kAtom.
  const Atom& atom() const;
  /// For kEquals.
  const Term& lhs() const;
  const Term& rhs() const;
  /// For kNot / kExists / kForall: the single child. For kImplies/kIff:
  /// children()[0] and children()[1].
  const std::vector<FoPtr>& children() const { return children_; }
  /// For kExists / kForall.
  const std::vector<std::string>& quantified_vars() const { return vars_; }

  /// Free variables of the formula.
  std::set<std::string> FreeVariables() const;

  /// Constants mentioned anywhere.
  std::set<Value> Constants() const;

  /// Relation symbols used, with arities.
  Schema UsedSchema() const;

  /// True if the formula is in the ∃FO fragment: no universal quantifier in
  /// positive position and no existential in negative position (checked by
  /// polarity, so e.g. ¬∀x.¬R(x) counts as existential).
  bool IsExistential() const;

  /// A copy with every relation symbol renamed via `rename` (used by the
  /// twin-schema constructions).
  FoPtr RenameRelations(
      const std::function<std::string(const std::string&)>& rename) const;

  /// Structural rendering, e.g. "forall x . (R(x) -> exists y . E(x, y))".
  std::string ToString() const;

 protected:
  explicit FoFormula(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
  Atom atom_;                       // kAtom
  Term lhs_, rhs_;                  // kEquals
  std::vector<FoPtr> children_;     // connectives / quantifier body
  std::vector<std::string> vars_;   // quantified variables
};

/// A first-order *query*: a formula with a designated tuple of free
/// variables as output. Boolean queries (sentences) have no free variables.
struct FoQuery {
  std::string head_name = "Q";
  std::vector<std::string> free_vars;
  FoPtr formula;

  int head_arity() const { return static_cast<int>(free_vars.size()); }
  std::string ToString() const;
};

}  // namespace vqdr

#endif  // VQDR_FO_FORMULA_H_
