// Standalone driver for the fuzz harnesses on toolchains without libFuzzer
// (the CI corpus-replay job, plain g++ builds): feeds every file argument —
// or every regular file under a directory argument — through
// LLVMFuzzerTestOneInput exactly as libFuzzer would. Exit 0 means every
// input was survived; a harness trap/crash aborts the process, which is the
// failure signal.
//
//   fuzz_cq_replay fuzz/corpus/cq
//   fuzz_fo_replay crash-1234 fuzz/corpus/fo

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.string().c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path p(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(p);
    }
  }
  int failures = 0;
  for (const std::filesystem::path& p : inputs) {
    if (!ReplayFile(p)) ++failures;
  }
  std::fprintf(stderr, "replay: %zu inputs, %d unreadable\n", inputs.size(),
               failures);
  return failures == 0 ? 0 : 2;
}
