#include "cq/matcher.h"

#include <algorithm>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqdr {

namespace {

// Counts how many argument positions of `atom` are already determined by
// `binding` (constants count as bound).
int BoundPositions(const Atom& atom, const Binding& binding) {
  int bound = 0;
  for (const Term& t : atom.args) {
    if (t.is_const() || binding.count(t.var()) > 0) ++bound;
  }
  return bound;
}

// Stack-local tally for one ForEachMatch call, flushed to the obs counters
// once at the end — keeps atomic traffic out of the recursion entirely.
struct MatchStats {
  std::uint64_t attempts = 0;
  std::uint64_t matches = 0;
};

// Recursive backtracking join. `remaining` holds indices of atoms not yet
// matched.
bool MatchRec(const std::vector<Atom>& atoms, const Instance& db,
              std::vector<int>& remaining, Binding& binding,
              const std::function<bool(const Binding&)>& on_match,
              MatchStats& stats, guard::Budget* budget) {
  // One budget step per backtracking node: each node's own work is bounded
  // by the relation size, so this polls often enough for deadlines without
  // per-tuple overhead.
  if (!guard::IsComplete(guard::Check(budget))) return false;
  if (remaining.empty()) {
    ++stats.matches;
    return on_match(binding);
  }

  // Pick the most-constrained atom: maximal bound positions, then smaller
  // relation. This keeps the search close to a worst-case-optimal join on
  // the small instances the library processes.
  std::size_t best_i = 0;
  int best_bound = -1;
  std::size_t best_size = 0;
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    const Atom& atom = atoms[remaining[i]];
    int bound = BoundPositions(atom, binding);
    std::size_t size = db.Get(atom.predicate).size();
    if (bound > best_bound || (bound == best_bound && size < best_size)) {
      best_bound = bound;
      best_size = size;
      best_i = i;
    }
  }
  int atom_index = remaining[best_i];
  remaining.erase(remaining.begin() + best_i);
  const Atom& atom = atoms[atom_index];
  const Relation& rel = db.Get(atom.predicate);

  bool keep_going = true;
  // Tallied in a register-local and folded into `stats` once per level so
  // the per-tuple loop stays store-free.
  std::uint64_t attempts = 0;
  for (const Tuple& tuple : rel.tuples()) {
    ++attempts;
    // Try to extend the binding so that atom maps to this tuple.
    std::vector<std::pair<std::string, Value>> added;
    bool consistent = true;
    for (std::size_t pos = 0; pos < atom.args.size(); ++pos) {
      const Term& t = atom.args[pos];
      Value v = tuple[pos];
      if (t.is_const()) {
        if (t.constant() != v) {
          consistent = false;
          break;
        }
        continue;
      }
      auto it = binding.find(t.var());
      if (it != binding.end()) {
        if (it->second != v) {
          consistent = false;
          break;
        }
      } else {
        binding.emplace(t.var(), v);
        added.emplace_back(t.var(), v);
      }
    }
    if (consistent) {
      keep_going =
          MatchRec(atoms, db, remaining, binding, on_match, stats, budget);
    }
    for (const auto& [var, value] : added) binding.erase(var);
    if (!keep_going) break;
  }
  stats.attempts += attempts;

  remaining.insert(remaining.begin() + best_i, atom_index);
  return keep_going;
}

// Resolves a term under a binding; all variables must be bound.
Value ResolveTerm(const Term& t, const Binding& binding) {
  if (t.is_const()) return t.constant();
  auto it = binding.find(t.var());
  VQDR_CHECK(it != binding.end()) << "unbound variable " << t.var();
  return it->second;
}

// Checks negated atoms and disequalities under a full binding.
bool FiltersPass(const ConjunctiveQuery& q, const Instance& db,
                 const Binding& binding) {
  for (const TermComparison& c : q.disequalities()) {
    if (ResolveTerm(c.lhs, binding) == ResolveTerm(c.rhs, binding)) {
      return false;
    }
  }
  for (const Atom& atom : q.negated_atoms()) {
    // A predicate absent from the database schema denotes an empty relation,
    // so the negated atom trivially passes.
    if (!db.schema().Contains(atom.predicate)) continue;
    Tuple ground;
    ground.reserve(atom.args.size());
    for (const Term& t : atom.args) ground.push_back(ResolveTerm(t, binding));
    if (db.HasFact(atom.predicate, ground)) return false;
  }
  return true;
}

}  // namespace

bool ForEachMatch(const std::vector<Atom>& atoms, const Instance& db,
                  const Binding& initial,
                  const std::function<bool(const Binding&)>& on_match,
                  guard::Budget* budget) {
  for (const Atom& atom : atoms) {
    // A predicate missing from the database schema denotes an empty
    // relation: the conjunction has no matches.
    if (!db.schema().Contains(atom.predicate)) return true;
    VQDR_CHECK_EQ(*db.schema().ArityOf(atom.predicate), atom.arity())
        << "atom/relation arity mismatch for " << atom.predicate;
  }
  // With tracing off this is one relaxed load; with it on, the hom matcher
  // shows up as its own node in the span-tree profile.
  VQDR_TRACE_SPAN("cq.match", static_cast<std::int64_t>(atoms.size()));
  std::vector<int> remaining(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    remaining[i] = static_cast<int>(i);
  }
  Binding binding = initial;
  MatchStats stats;
  bool completed =
      MatchRec(atoms, db, remaining, binding, on_match, stats, budget);
  VQDR_COUNTER_ADD("cq.hom.attempts", stats.attempts);
  VQDR_COUNTER_ADD("cq.hom.matches", stats.matches);
  return completed;
}

Relation EvaluateCq(const ConjunctiveQuery& q, const Instance& db) {
  VQDR_COUNTER_INC("cq.eval.calls");
  VQDR_CHECK(q.IsSafe()) << "evaluating unsafe query: " << q.ToString();
  bool satisfiable = true;
  ConjunctiveQuery normalized = q.PropagateEqualities(&satisfiable);
  Relation result(q.head_arity());
  if (!satisfiable) return result;

  ForEachMatch(normalized.atoms(), db, Binding{},
               [&](const Binding& binding) {
                 if (FiltersPass(normalized, db, binding)) {
                   Tuple answer;
                   answer.reserve(normalized.head_terms().size());
                   for (const Term& t : normalized.head_terms()) {
                     answer.push_back(ResolveTerm(t, binding));
                   }
                   result.Insert(answer);
                 }
                 return true;
               });
  return result;
}

Relation EvaluateUcq(const UnionQuery& q, const Instance& db) {
  VQDR_CHECK(!q.empty()) << "evaluating empty UCQ";
  Relation result(q.head_arity());
  for (const ConjunctiveQuery& disjunct : q.disjuncts()) {
    result = result.Union(EvaluateCq(disjunct, db));
  }
  return result;
}

bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget) {
  return CqAnswerContains(q, db, tuple, budget, nullptr);
}

bool CqAnswerContains(const ConjunctiveQuery& q, const Instance& db,
                      const Tuple& tuple, guard::Budget* budget,
                      Binding* witness) {
  VQDR_COUNTER_INC("cq.answer_contains.calls");
  VQDR_CHECK_EQ(static_cast<int>(tuple.size()), q.head_arity());
  VQDR_CHECK(q.IsSafe()) << "evaluating unsafe query: " << q.ToString();
  bool satisfiable = true;
  ConjunctiveQuery normalized = q.PropagateEqualities(&satisfiable);
  if (!satisfiable) return false;

  // Bind head variables to the target tuple up front; reject if the head's
  // constants disagree with the tuple.
  Binding initial;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const Term& t = normalized.head_terms()[i];
    if (t.is_const()) {
      if (t.constant() != tuple[i]) return false;
      continue;
    }
    auto it = initial.find(t.var());
    if (it != initial.end()) {
      if (it->second != tuple[i]) return false;
    } else {
      initial.emplace(t.var(), tuple[i]);
    }
  }

  bool found = false;
  ForEachMatch(
      normalized.atoms(), db, initial,
      [&](const Binding& binding) {
        if (FiltersPass(normalized, db, binding)) {
          found = true;
          if (witness != nullptr) *witness = binding;
          return false;  // stop
        }
        return true;
      },
      budget);
  return found;
}

bool CqHolds(const ConjunctiveQuery& q, const Instance& db) {
  VQDR_CHECK_EQ(q.head_arity(), 0) << "CqHolds on non-Boolean query";
  return CqAnswerContains(q, db, Tuple{});
}

}  // namespace vqdr
