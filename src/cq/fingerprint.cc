#include "cq/fingerprint.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "base/check.h"
#include "cq/minimize.h"
#include "obs/obs_macros.h"
#include "obs/trace.h"

namespace vqdr {

namespace {

// Budgets for the individualization-refinement search. Exceeding any of them
// means "no fingerprint" — callers bypass the cache, never a wrong key.
constexpr std::size_t kMaxVariables = 200;
constexpr std::size_t kMaxLeaves = 512;
constexpr std::size_t kMaxNodes = 8192;

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  v *= 0x9e3779b97f4a7c15ull;
  v ^= v >> 32;
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t HashString(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64.
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// The canonical-renaming search over one normalized (equality-free,
// negation-free) CQ. Colors are 64-bit values; equal colors across two
// isomorphic queries are guaranteed by construction (each color is a pure
// function of isomorphism-invariant structure), and equal colors *within*
// one query mean "not yet distinguished". The exact leaf serialization makes
// accidental hash collisions harmless for soundness: they can only make the
// search coarser (more leaves), and identically so in isomorphic copies.
class Canonicalizer {
 public:
  explicit Canonicalizer(const ConjunctiveQuery& q) {
    for (const std::string& v : q.AllVariables()) {
      var_index_[v] = static_cast<int>(vars_.size());
      vars_.push_back(v);
    }
    head_.reserve(q.head_terms().size());
    for (const Term& t : q.head_terms()) head_.push_back(Ref(t));
    atoms_.reserve(q.atoms().size());
    for (const Atom& a : q.atoms()) {
      AtomRef ar;
      ar.predicate = a.predicate;
      ar.args.reserve(a.args.size());
      for (const Term& t : a.args) ar.args.push_back(Ref(t));
      atoms_.push_back(std::move(ar));
    }
    for (const TermComparison& d : q.disequalities()) {
      diseqs_.push_back({Ref(d.lhs), Ref(d.rhs)});
    }
    occurrences_.resize(vars_.size());
    for (std::size_t ai = 0; ai < atoms_.size(); ++ai) {
      const AtomRef& a = atoms_[ai];
      for (std::size_t p = 0; p < a.args.size(); ++p) {
        if (a.args[p].var >= 0) {
          occurrences_[a.args[p].var].push_back(
              {static_cast<int>(ai), static_cast<int>(p)});
        }
      }
    }
  }

  // Runs the search; nullopt when a budget is exceeded.
  std::optional<std::string> Run() {
    if (vars_.size() > kMaxVariables) return std::nullopt;
    std::vector<std::uint64_t> colors = InitialColors();
    Refine(colors);
    best_.reset();
    leaves_ = 0;
    nodes_ = 0;
    if (!Search(colors)) return std::nullopt;
    return best_;
  }

 private:
  // A term reference: var >= 0 indexes vars_, else a constant id.
  struct TermRef {
    int var = -1;
    std::int64_t constant_id = 0;
  };
  struct AtomRef {
    std::string predicate;
    std::vector<TermRef> args;
  };
  struct Occurrence {
    int atom;
    int pos;
  };

  TermRef Ref(const Term& t) {
    TermRef r;
    if (t.is_var()) {
      auto it = var_index_.find(t.var());
      VQDR_CHECK(it != var_index_.end()) << "unsafe variable in fingerprint";
      r.var = it->second;
    } else {
      r.constant_id = t.constant().id;
    }
    return r;
  }

  // Initial color of a variable: a hash of every isomorphism-invariant local
  // fact — head positions, per-occurrence (predicate, arity, position,
  // constant pattern of the atom), and disequality partners that are
  // constants. Variable-to-variable structure enters through refinement.
  std::vector<std::uint64_t> InitialColors() const {
    std::vector<std::uint64_t> colors(vars_.size(), 0);
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      std::uint64_t h = 0x517cc1b727220a95ull;
      std::vector<std::uint64_t> parts;
      for (std::size_t p = 0; p < head_.size(); ++p) {
        if (head_[p].var == static_cast<int>(v)) {
          parts.push_back(Mix(1, p));
        }
      }
      for (const Occurrence& occ : occurrences_[v]) {
        const AtomRef& a = atoms_[occ.atom];
        std::uint64_t ph = Mix(2, HashString(a.predicate));
        ph = Mix(ph, a.args.size());
        ph = Mix(ph, occ.pos);
        for (std::size_t p = 0; p < a.args.size(); ++p) {
          if (a.args[p].var < 0) {
            ph = Mix(ph, Mix(p, static_cast<std::uint64_t>(
                                    a.args[p].constant_id)));
          }
        }
        parts.push_back(ph);
      }
      for (const auto& d : diseqs_) {
        const TermRef& other = d.first.var == static_cast<int>(v) ? d.second
                               : d.second.var == static_cast<int>(v)
                                   ? d.first
                                   : TermRef{-2, 0};
        if (other.var == -2) continue;
        if (other.var < 0) {
          parts.push_back(
              Mix(3, static_cast<std::uint64_t>(other.constant_id)));
        } else {
          parts.push_back(Mix(3, 0));  // Variable partner; count only here.
        }
      }
      std::sort(parts.begin(), parts.end());
      for (std::uint64_t p : parts) h = Mix(h, p);
      colors[v] = h;
    }
    return colors;
  }

  // One Weisfeiler–Leman pass to a fixpoint: each variable's color absorbs
  // the sorted multiset of its neighborhood colors until the partition (by
  // color value) stops splitting.
  void Refine(std::vector<std::uint64_t>& colors) const {
    if (vars_.empty()) return;
    std::size_t classes = CountClasses(colors);
    for (std::size_t round = 0; round < vars_.size() + 1; ++round) {
      std::vector<std::uint64_t> next(colors.size());
      for (std::size_t v = 0; v < vars_.size(); ++v) {
        std::uint64_t h = Mix(0xdabbad00, colors[v]);
        std::vector<std::uint64_t> parts;
        for (const Occurrence& occ : occurrences_[v]) {
          const AtomRef& a = atoms_[occ.atom];
          std::uint64_t ph = Mix(4, HashString(a.predicate));
          ph = Mix(ph, occ.pos);
          for (std::size_t p = 0; p < a.args.size(); ++p) {
            ph = Mix(ph, a.args[p].var >= 0
                             ? colors[a.args[p].var]
                             : Mix(5, static_cast<std::uint64_t>(
                                          a.args[p].constant_id)));
          }
          parts.push_back(ph);
        }
        for (const auto& d : diseqs_) {
          int other = -1;
          if (d.first.var == static_cast<int>(v) && d.second.var >= 0) {
            other = d.second.var;
          } else if (d.second.var == static_cast<int>(v) && d.first.var >= 0) {
            other = d.first.var;
          }
          if (other >= 0) parts.push_back(Mix(6, colors[other]));
        }
        std::sort(parts.begin(), parts.end());
        for (std::uint64_t p : parts) h = Mix(h, p);
        next[v] = h;
      }
      colors.swap(next);
      std::size_t new_classes = CountClasses(colors);
      if (new_classes == classes) break;
      classes = new_classes;
    }
  }

  static std::size_t CountClasses(const std::vector<std::uint64_t>& colors) {
    std::set<std::uint64_t> distinct(colors.begin(), colors.end());
    return distinct.size();
  }

  // Picks the individualization target: the smallest non-singleton color
  // class, ties broken by color value — a pure function of the (invariant)
  // color multiset, so isomorphic copies branch on corresponding classes.
  // Returns the class's color, or nullopt if the partition is discrete.
  static std::optional<std::uint64_t> TargetClass(
      const std::vector<std::uint64_t>& colors) {
    std::map<std::uint64_t, std::size_t> count;
    for (std::uint64_t c : colors) ++count[c];
    std::optional<std::uint64_t> best;
    std::size_t best_size = 0;
    for (const auto& [color, n] : count) {
      if (n < 2) continue;
      if (!best || n < best_size) {
        best = color;
        best_size = n;
      }
    }
    return best;
  }

  // Depth-first individualization-refinement; false = budget exceeded.
  bool Search(const std::vector<std::uint64_t>& colors) {
    if (++nodes_ > kMaxNodes) return false;
    std::optional<std::uint64_t> target = TargetClass(colors);
    if (!target) {
      if (++leaves_ > kMaxLeaves) return false;
      std::string leaf = Serialize(colors);
      if (!best_ || leaf < *best_) best_ = std::move(leaf);
      return true;
    }
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      if (colors[v] != *target) continue;
      std::vector<std::uint64_t> branch = colors;
      // Same marker on every branch: corresponding vertices in isomorphic
      // copies receive identical individualized colors.
      branch[v] = Mix(0x1d91f1ca7e000001ull, branch[v]);
      Refine(branch);
      if (!Search(branch)) return false;
    }
    return true;
  }

  // Serializes the query under the discrete coloring: variables ranked by
  // color value, atoms/disequalities sorted and deduplicated.
  std::string Serialize(const std::vector<std::uint64_t>& colors) const {
    std::vector<int> order(vars_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&colors](int a, int b) {
      return colors[a] < colors[b];
    });
    std::vector<int> rank(vars_.size());
    for (std::size_t i = 0; i < order.size(); ++i) rank[order[i]] = i;

    auto term = [&rank](const TermRef& t) {
      return t.var >= 0 ? "x" + std::to_string(rank[t.var])
                        : "c" + std::to_string(t.constant_id);
    };
    std::ostringstream out;
    out << "H(";
    for (std::size_t i = 0; i < head_.size(); ++i) {
      if (i > 0) out << ",";
      out << term(head_[i]);
    }
    out << ")|";
    std::set<std::string> atom_strs;
    for (const AtomRef& a : atoms_) {
      std::string s = a.predicate + "(";
      for (std::size_t i = 0; i < a.args.size(); ++i) {
        if (i > 0) s += ",";
        s += term(a.args[i]);
      }
      s += ")";
      atom_strs.insert(std::move(s));
    }
    bool first = true;
    for (const std::string& s : atom_strs) {
      if (!first) out << ";";
      out << s;
      first = false;
    }
    out << "|";
    std::set<std::string> diseq_strs;
    for (const auto& d : diseqs_) {
      std::string a = term(d.first);
      std::string b = term(d.second);
      if (b < a) std::swap(a, b);
      diseq_strs.insert(a + "!=" + b);
    }
    first = true;
    for (const std::string& s : diseq_strs) {
      if (!first) out << ";";
      out << s;
      first = false;
    }
    return out.str();
  }

  std::vector<std::string> vars_;
  std::map<std::string, int> var_index_;
  std::vector<TermRef> head_;
  std::vector<AtomRef> atoms_;
  std::vector<std::pair<TermRef, TermRef>> diseqs_;
  std::vector<std::vector<Occurrence>> occurrences_;

  std::optional<std::string> best_;
  std::size_t leaves_ = 0;
  std::size_t nodes_ = 0;
};

}  // namespace

std::optional<std::string> CanonicalCqFingerprint(const ConjunctiveQuery& q) {
  if (q.UsesNegation()) return std::nullopt;
  bool satisfiable = true;
  ConjunctiveQuery nq = q.PropagateEqualities(&satisfiable);
  if (!satisfiable) {
    return "UNSAT|a" + std::to_string(q.head_arity());
  }
  VQDR_TRACE_SPAN("memo.fingerprint");
  Canonicalizer canon(nq);
  return canon.Run();
}

std::optional<std::string> CoreCqFingerprint(const ConjunctiveQuery& q) {
  if (!q.IsPureCq()) return std::nullopt;
  return CanonicalCqFingerprint(MinimizeCq(q));
}

std::optional<std::string> CanonicalUcqFingerprint(const UnionQuery& q) {
  std::set<std::string> parts;
  for (const ConjunctiveQuery& d : q.disjuncts()) {
    std::optional<std::string> fp = CanonicalCqFingerprint(d);
    if (!fp) return std::nullopt;
    if (fp->rfind("UNSAT|", 0) == 0) continue;  // False disjunct: drop.
    parts.insert(std::move(*fp));
  }
  if (parts.empty()) {
    return "UCQ-UNSAT|a" + std::to_string(q.head_arity());
  }
  std::ostringstream out;
  bool first = true;
  for (const std::string& p : parts) {
    if (!first) out << "+";
    out << p;
    first = false;
  }
  return out.str();
}

std::string ExactCqKey(const ConjunctiveQuery& q) { return q.ToString(); }

std::string ExactUcqKey(const UnionQuery& q) { return q.ToString(); }

std::string InstanceMemoKey(const Instance& instance) {
  std::ostringstream out;
  for (const RelationDecl& d : instance.schema().decls()) {
    out << d.name << "/" << d.arity << ",";
  }
  out << "#" << instance.ToKey();
  return out.str();
}

std::unordered_map<Value, int> WlValueColorClasses(const Instance& instance) {
  // Dense value table over the active domain.
  std::set<Value> dom_set = instance.ActiveDomain();
  std::vector<Value> dom(dom_set.begin(), dom_set.end());
  std::unordered_map<Value, int> index;
  index.reserve(dom.size());
  for (std::size_t i = 0; i < dom.size(); ++i) {
    index.emplace(dom[i], static_cast<int>(i));
  }

  // Initial color: the multiset of (relation, position) slots a value fills.
  // Hash collisions can only merge classes, which for the symmetry-breaking
  // consumer just means a weaker (never wrong) filter — the exact
  // transposition check downstream decides interchangeability.
  std::vector<std::uint64_t> colors(dom.size(), 0);
  {
    std::vector<std::vector<std::uint64_t>> occ(dom.size());
    for (const RelationDecl& d : instance.schema().decls()) {
      std::uint64_t rel_hash = HashString(d.name);
      for (const Tuple& t : instance.Get(d.name).tuples()) {
        for (std::size_t pos = 0; pos < t.size(); ++pos) {
          occ[index.at(t[pos])].push_back(Mix(rel_hash, pos));
        }
      }
    }
    for (std::size_t i = 0; i < dom.size(); ++i) {
      std::sort(occ[i].begin(), occ[i].end());
      std::uint64_t h = 0x9ae16a3b2f90404full;
      for (std::uint64_t o : occ[i]) h = Mix(h, o);
      colors[i] = h;
    }
  }

  // Refine to fixpoint: each round folds in, per occurrence, the relation,
  // the position, and the colors of the co-occurring values (position-wise).
  std::size_t distinct = std::set<std::uint64_t>(colors.begin(), colors.end()).size();
  for (std::size_t round = 0; round < dom.size(); ++round) {
    std::vector<std::vector<std::uint64_t>> occ(dom.size());
    for (const RelationDecl& d : instance.schema().decls()) {
      std::uint64_t rel_hash = HashString(d.name);
      for (const Tuple& t : instance.Get(d.name).tuples()) {
        std::uint64_t tuple_hash = rel_hash;
        for (const Value& v : t) {
          tuple_hash = Mix(tuple_hash, colors[index.at(v)]);
        }
        for (std::size_t pos = 0; pos < t.size(); ++pos) {
          occ[index.at(t[pos])].push_back(Mix(tuple_hash, pos));
        }
      }
    }
    std::vector<std::uint64_t> next(dom.size());
    for (std::size_t i = 0; i < dom.size(); ++i) {
      std::sort(occ[i].begin(), occ[i].end());
      std::uint64_t h = colors[i];
      for (std::uint64_t o : occ[i]) h = Mix(h, o);
      next[i] = h;
    }
    std::size_t next_distinct =
        std::set<std::uint64_t>(next.begin(), next.end()).size();
    colors.swap(next);
    if (next_distinct == distinct) break;  // partition stopped refining
    distinct = next_distinct;
  }

  // Dense class ids in color order (deterministic given the instance).
  std::map<std::uint64_t, int> class_id;
  for (std::uint64_t c : colors) {
    class_id.emplace(c, static_cast<int>(class_id.size()));
  }
  std::unordered_map<Value, int> result;
  result.reserve(dom.size());
  for (std::size_t i = 0; i < dom.size(); ++i) {
    result.emplace(dom[i], class_id.at(colors[i]));
  }
  return result;
}

}  // namespace vqdr
