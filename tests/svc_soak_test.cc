// Service soak (the tsan battery): thousands of mixed concurrent requests
// through one Service — every response must be structurally valid, every
// complete result byte-identical to a direct engine call through the same
// shared builders, and the run must terminate (zero hangs) with consistent
// admission accounting. A second scenario drives the service far past its
// queue limit and asserts overload never produces anything but a complete
// answer or a structured "overloaded" rejection.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "chase/chain.h"
#include "memo/memo.h"

#ifndef VQDR_MEMO_DISABLED
#include "memo/snapshot.h"
#include "memo/store.h"
#endif
#include "core/determinacy.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "guard/budget.h"
#include "guard/outcome.h"
#include "svc/proto.h"
#include "svc/service.h"

namespace vqdr::svc {
namespace {

struct SoakCase {
  const char* line;
  std::string expected_result;  // byte-identity reference, built directly
};

Request MustParse(const std::string& line) {
  StatusOr<Request> req = ParseRequest(line);
  EXPECT_TRUE(req.ok()) << req.status().message();
  return std::move(req).value();
}

std::string DirectDeterminacy(const std::string& schema,
                              const std::vector<std::string>& views,
                              const std::string& query) {
  Scenario sc;
  EXPECT_TRUE(BuildScenario(schema, views, query, &sc).ok());
  guard::Budget budget;
  UnrestrictedDeterminacyResult r =
      DecideUnrestrictedDeterminacy(sc.views, *sc.query, &budget);
  return DeterminacyResultJson(r, sc.pool);
}

std::string DirectContainment(const std::string& q1_text,
                              const std::string& q2_text) {
  NamePool pool;
  auto q1 = ParseCq(q1_text, pool);
  auto q2 = ParseCq(q2_text, pool);
  EXPECT_TRUE(q1.ok() && q2.ok());
  CqContainmentOptions options;
  guard::Budget budget;
  options.budget = &budget;
  return ContainmentResultJson(
      CqContainedInGoverned(q1.value(), q2.value(), options));
}

std::string DirectChase(const std::string& schema,
                        const std::vector<std::string>& views,
                        const std::string& query, int levels) {
  Scenario sc;
  EXPECT_TRUE(BuildScenario(schema, views, query, &sc).ok());
  ChaseChainOptions options;
  options.levels = levels;
  guard::Budget budget;
  options.budget = &budget;
  ValueFactory factory(sc.pool.MaxId());
  ChaseChain chain = BuildChaseChain(sc.views, *sc.query, options, factory);
  return ChaseResultJson(chain, sc.pool);
}

std::string DirectParseCanonical(const std::string& text) {
  NamePool pool;
  auto q = ParseCq(text, pool);
  EXPECT_TRUE(q.ok());
  std::string result = "{\"canonical\":";
  AppendJson(CqToString(q.value(), pool), &result);
  result.push_back('}');
  return result;
}

std::vector<SoakCase> BuildMixedCases() {
  std::vector<SoakCase> cases;
  cases.push_back(
      {"{\"op\":\"determinacy\",\"schema\":\"R/2\","
       "\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"}",
       DirectDeterminacy("R/2", {"V(x,y) :- R(x,y)"}, "Q(x) :- R(x,y)")});
  cases.push_back(
      {"{\"op\":\"determinacy\",\"schema\":\"R/2\","
       "\"views\":[\"V(x) :- R(x,y)\"],\"query\":\"Q(x,y) :- R(x,y)\"}",
       DirectDeterminacy("R/2", {"V(x) :- R(x,y)"}, "Q(x,y) :- R(x,y)")});
  cases.push_back(
      {"{\"op\":\"containment\",\"q1\":\"Q(x) :- R(x,x)\","
       "\"q2\":\"Q(x) :- R(x,y)\"}",
       DirectContainment("Q(x) :- R(x,x)", "Q(x) :- R(x,y)")});
  cases.push_back(
      {"{\"op\":\"containment\",\"q1\":\"Q(x) :- R(x,y)\","
       "\"q2\":\"Q(x) :- R(x,x)\"}",
       DirectContainment("Q(x) :- R(x,y)", "Q(x) :- R(x,x)")});
  cases.push_back(
      {"{\"op\":\"chase\",\"levels\":2,\"schema\":\"R/2 S/2\","
       "\"views\":[\"V1(x,y) :- R(x,y)\",\"V2(x,y) :- S(x,y)\"],"
       "\"query\":\"Q(x,z) :- R(x,y), S(y,z)\"}",
       DirectChase("R/2 S/2", {"V1(x,y) :- R(x,y)", "V2(x,y) :- S(x,y)"},
                   "Q(x,z) :- R(x,y), S(y,z)", 2)});
  cases.push_back(
      {"{\"op\":\"parse\",\"kind\":\"cq\","
       "\"text\":\"Q(x) :- R(x,y), R(y,z), R(z,x)\"}",
       DirectParseCanonical("Q(x) :- R(x,y), R(y,z), R(z,x)")});
  return cases;
}

TEST(SvcSoak, MixedConcurrentRequestsByteIdenticalAndHangFree) {
  constexpr int kClientThreads = 8;
  constexpr int kRequestsPerThread = 256;  // 2048 total

  ServiceOptions options;
  options.threads = 4;
  options.queue_limit = 64;  // above peak concurrency: no rejects expected
  Service service(options);

  const std::vector<SoakCase> cases = BuildMixedCases();
  std::vector<Request> parsed;
  parsed.reserve(cases.size());
  for (const SoakCase& c : cases) parsed.push_back(MustParse(c.line));

  std::atomic<int> mismatches{0};
  std::atomic<int> not_ok{0};
  std::atomic<int> incomplete{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::size_t which = (t + i) % cases.size();
        Response r = service.Handle(parsed[which]);
        if (!r.ok) {
          not_ok.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!r.has_outcome || r.outcome != guard::Outcome::kComplete) {
          incomplete.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r.result_json != cases[which].expected_result) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(not_ok.load(), 0);
  EXPECT_EQ(incomplete.load(), 0);
  EXPECT_EQ(mismatches.load(), 0) << "served result_json diverged from the "
                                     "direct engine call";

  const ServiceStats stats = service.stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kClientThreads) * kRequestsPerThread;
  EXPECT_EQ(stats.accepted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.rejected_overloaded, 0u);
  EXPECT_EQ(stats.internal_errors, 0u);
  EXPECT_EQ(service.in_flight(), 0u);
}

// The snapshot-flusher soak (tsan): mixed concurrent traffic while the
// background flusher serializes the shared store every millisecond, plus
// concurrent "snapshot" control ops. Every flushed image a prober loads
// must be structurally valid, and byte-identity must hold throughout.
TEST(SvcSoak, BackgroundSnapshotFlushUnderLoadStaysConsistent) {
#ifdef VQDR_MEMO_DISABLED
  GTEST_SKIP() << "memo subsystem compiled out";
#else
  constexpr int kClientThreads = 6;
  constexpr int kRequestsPerThread = 128;

  const std::string path =
      ::testing::TempDir() + "vqdr_svc_soak_flush.bin";
  std::remove(path.c_str());
  memo::GlobalStore().Clear();

  ServiceOptions options;
  options.threads = 4;
  options.queue_limit = 64;
  options.memo_snapshot_path = path;
  options.memo_flush_ms = 1;

  std::atomic<int> mismatches{0};
  std::atomic<int> corrupt_images{0};
  {
    Service service(options);
    const std::vector<SoakCase> cases = BuildMixedCases();
    std::vector<Request> parsed;
    parsed.reserve(cases.size());
    for (const SoakCase& c : cases) parsed.push_back(MustParse(c.line));
    Request snapshot_op = MustParse("{\"op\":\"snapshot\"}");

    std::vector<std::thread> clients;
    clients.reserve(kClientThreads);
    for (int t = 0; t < kClientThreads; ++t) {
      clients.emplace_back([&, t] {
        for (int i = 0; i < kRequestsPerThread; ++i) {
          // Every 32nd request of one thread is an explicit snapshot op,
          // racing the periodic flusher on purpose.
          if (t == 0 && i % 32 == 31) {
            Response s = service.Handle(snapshot_op);
            if (!s.ok) mismatches.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const std::size_t which = (t + i) % cases.size();
          Response r = service.Handle(parsed[which]);
          if (!r.ok || !r.has_outcome ||
              r.outcome != guard::Outcome::kComplete ||
              r.result_json != cases[which].expected_result) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // Prober: every image the flusher lands must load cleanly.
    std::atomic<bool> stop{false};
    std::thread prober([&] {
      while (!stop.load(std::memory_order_acquire)) {
        memo::Store probe(8192);
        memo::SnapshotIoStats stats = memo::LoadSnapshot(probe, path);
        if (stats.corrupt) {
          corrupt_images.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    for (std::thread& c : clients) c.join();
    stop.store(true, std::memory_order_release);
    prober.join();
  }  // Service destructor: drain + final flush

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(corrupt_images.load(), 0);
  // The final image restores into a fresh store without damage.
  memo::Store fresh(8192);
  memo::SnapshotIoStats final_stats = memo::LoadSnapshot(fresh, path);
  EXPECT_FALSE(final_stats.corrupt) << final_stats.error;
  EXPECT_GE(final_stats.entries, 1u);
  std::remove(path.c_str());
#endif
}

TEST(SvcSoak, OverloadNeverDropsOrFabricates) {
  ServiceOptions options;
  options.threads = 2;
  options.queue_limit = 2;  // far below offered concurrency
  Service service(options);

  const std::string expected =
      DirectDeterminacy("R/2", {"V(x,y) :- R(x,y)"}, "Q(x) :- R(x,y)");
  const Request req = MustParse(
      "{\"op\":\"determinacy\",\"schema\":\"R/2\","
      "\"views\":[\"V(x,y) :- R(x,y)\"],\"query\":\"Q(x) :- R(x,y)\"}");

  constexpr int kClientThreads = 8;
  constexpr int kRequestsPerThread = 64;
  std::atomic<int> completed{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> anomalies{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        Response r = service.Handle(req);
        if (r.ok && r.has_outcome &&
            r.outcome == guard::Outcome::kComplete &&
            r.result_json == expected) {
          completed.fetch_add(1, std::memory_order_relaxed);
        } else if (!r.ok && r.code == "overloaded" && r.has_retry) {
          overloaded.fetch_add(1, std::memory_order_relaxed);
        } else {
          anomalies.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  constexpr int kTotal = kClientThreads * kRequestsPerThread;
  EXPECT_EQ(anomalies.load(), 0)
      << "a response was neither complete-and-exact nor a structured "
         "overloaded rejection";
  EXPECT_EQ(completed.load() + overloaded.load(), kTotal);
  EXPECT_GT(completed.load(), 0);  // the service made progress throughout

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(completed.load()));
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.rejected_overloaded,
            static_cast<std::uint64_t>(overloaded.load()));
  EXPECT_EQ(service.in_flight(), 0u);
}

}  // namespace
}  // namespace vqdr::svc
