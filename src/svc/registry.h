#ifndef VQDR_SVC_REGISTRY_H_
#define VQDR_SVC_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "guard/budget.h"
#include "svc/proto.h"

// The string-keyed operation registry the service dispatches through
// (ROADMAP item 1; the function_manager idiom). Handlers are pure request
// processors: they receive the parsed request plus the admitted budget and
// return a Response — admission, queueing, op identity, and serialization
// all live in Service. Engine handlers run on pool workers; control
// handlers (registered with kInline) run on the connection thread and
// bypass admission so the control plane stays responsive under overload.

namespace vqdr::svc {

/// How a registered operation is executed.
enum class Dispatch {
  /// Admitted, queued, and run as a pool task under the request budget.
  kQueued,
  /// Run immediately on the connection thread, no admission, no budget.
  kInline,
};

using Handler = std::function<Response(const Request&, guard::Budget&)>;

class OpRegistry {
 public:
  /// Registers `name` (replacing any previous handler).
  void Register(std::string name, Dispatch dispatch, Handler handler);

  struct Entry {
    Dispatch dispatch = Dispatch::kQueued;
    Handler handler;
  };

  /// The entry for `name`, or nullptr for an unknown operation.
  const Entry* Find(const std::string& name) const;

  /// Registered operation names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace vqdr::svc

#endif  // VQDR_SVC_REGISTRY_H_
