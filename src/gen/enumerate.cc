#include "gen/enumerate.h"

#include <set>
#include <string>
#include <vector>

#include "base/check.h"
#include "data/isomorphism.h"

namespace vqdr {

namespace {

// All tuples of the given arity over `universe`.
std::vector<Tuple> UniverseTuples(int arity, const std::vector<Value>& universe) {
  std::vector<Tuple> result;
  if (arity == 0) {
    result.push_back(Tuple{});
    return result;
  }
  Tuple current(arity);
  std::function<void(int)> rec = [&](int pos) {
    if (pos == arity) {
      result.push_back(current);
      return;
    }
    for (Value v : universe) {
      current[pos] = v;
      rec(pos + 1);
    }
  };
  rec(0);
  return result;
}

}  // namespace

EnumerationOutcome ForEachInstanceOver(
    const Schema& schema, const std::vector<Value>& universe,
    std::uint64_t max_instances,
    const std::function<bool(const Instance&)>& body,
    guard::Budget* budget) {
  EnumerationOutcome outcome;

  std::vector<std::vector<Tuple>> pools;
  for (const RelationDecl& d : schema.decls()) {
    pools.push_back(UniverseTuples(d.arity, universe));
    if (pools.back().size() >= 63u) {
      // 2^63+ candidate relations: the space is not enumerable. Report an
      // incomplete (empty) sweep instead of aborting, so budgeted callers
      // degrade gracefully.
      outcome.complete = false;
      outcome.outcome = guard::Outcome::kStepBudgetExhausted;
      return outcome;
    }
  }

  Instance current(schema);
  std::function<bool(std::size_t)> rec = [&](std::size_t i) -> bool {
    if (i == pools.size()) {
      ++outcome.visited;
      if (outcome.visited > max_instances) {
        outcome.complete = false;
        outcome.outcome = guard::Outcome::kStepBudgetExhausted;
        return false;
      }
      guard::Outcome check = guard::Check(budget);
      if (!guard::IsComplete(check)) {
        outcome.complete = false;
        outcome.outcome = check;
        return false;
      }
      return body(current);
    }
    std::uint64_t subsets = 1ull << pools[i].size();
    const std::string& name = schema.decls()[i].name;
    for (std::uint64_t mask = 0; mask < subsets; ++mask) {
      Relation rel(schema.decls()[i].arity);
      for (std::size_t t = 0; t < pools[i].size(); ++t) {
        if (mask & (1ull << t)) rel.Insert(pools[i][t]);
      }
      current.Set(name, std::move(rel));
      if (!rec(i + 1)) return false;
    }
    return true;
  };
  rec(0);
  return outcome;
}

InstanceSpace::InstanceSpace(const Schema& schema,
                             const std::vector<Value>& universe)
    : schema_(schema) {
  int total_bits = 0;
  for (const RelationDecl& d : schema_.decls()) {
    pools_.push_back(UniverseTuples(d.arity, universe));
    std::size_t bits = pools_.back().size();
    // Mirrors the ForEachInstanceOver bail-out, plus a product-overflow
    // guard: indices must fit comfortably in 64 bits.
    if (bits >= 63u) {
      indexable_ = false;
      return;
    }
    total_bits += static_cast<int>(bits);
    if (total_bits >= 63) {
      indexable_ = false;
      return;
    }
  }
  total_ = 1ull << total_bits;
}

void InstanceSpace::DecodeMasks(std::uint64_t index,
                                std::vector<std::uint64_t>* masks) const {
  masks->assign(pools_.size(), 0);
  // Relation 0 is the most significant digit (the serial recursion's
  // outermost loop), so decode from the last relation upward.
  for (std::size_t i = pools_.size(); i-- > 0;) {
    std::uint64_t radix = 1ull << pools_[i].size();
    (*masks)[i] = index % radix;
    index /= radix;
  }
}

Relation InstanceSpace::RelationForMask(std::size_t i,
                                        std::uint64_t mask) const {
  Relation rel(schema_.decls()[i].arity);
  for (std::size_t t = 0; t < pools_[i].size(); ++t) {
    if (mask & (1ull << t)) rel.Insert(pools_[i][t]);
  }
  return rel;
}

Instance InstanceSpace::At(std::uint64_t index) const {
  VQDR_CHECK(indexable_) << "instance space is not indexable";
  VQDR_CHECK(index < total_) << "instance index out of range";
  std::vector<std::uint64_t> masks;
  DecodeMasks(index, &masks);
  Instance current(schema_);
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    current.Set(schema_.decls()[i].name, RelationForMask(i, masks[i]));
  }
  return current;
}

void InstanceSpace::ForRange(
    std::uint64_t begin, std::uint64_t end,
    const std::function<bool(std::uint64_t, const Instance&)>& body) const {
  VQDR_CHECK(indexable_) << "instance space is not indexable";
  if (begin >= end) return;
  VQDR_CHECK(end <= total_) << "instance range out of bounds";

  std::vector<std::uint64_t> masks;
  DecodeMasks(begin, &masks);
  Instance current(schema_);
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    current.Set(schema_.decls()[i].name, RelationForMask(i, masks[i]));
  }
  for (std::uint64_t index = begin;; ) {
    if (!body(index, current)) return;
    if (++index == end) return;
    // Odometer increment, least-significant relation first; only relations
    // whose digit changed get rebuilt.
    for (std::size_t i = pools_.size(); i-- > 0;) {
      std::uint64_t radix = 1ull << pools_[i].size();
      masks[i] = (masks[i] + 1) % radix;
      current.Set(schema_.decls()[i].name, RelationForMask(i, masks[i]));
      if (masks[i] != 0) break;
    }
  }
}

EnumerationOutcome ForEachInstance(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body) {
  std::vector<Value> universe;
  for (int v = 1; v <= options.domain_size; ++v) universe.push_back(Value(v));
  return ForEachInstanceOver(schema, universe, options.max_instances, body,
                             options.budget);
}

EnumerationOutcome ForEachInstanceUpToIso(
    const Schema& schema, const EnumerationOptions& options,
    const std::function<bool(const Instance&)>& body) {
  std::set<std::string> seen;
  return ForEachInstance(schema, options, [&](const Instance& d) {
    if (!seen.insert(CanonicalKey(d)).second) return true;
    return body(d);
  });
}

}  // namespace vqdr
