#ifndef VQDR_CORE_FINITE_SEARCH_H_
#define VQDR_CORE_FINITE_SEARCH_H_

#include <optional>

#include "data/instance.h"
#include "gen/enumerate.h"
#include "views/view_set.h"

namespace vqdr {

/// Bounded search for *finite*-determinacy counterexamples. Finite
/// determinacy is undecidable already for UCQs (Theorem 4.5), so the
/// library offers the two sound half-tests the theory permits:
///
///  * positive: unrestricted determinacy (core/determinacy.h) implies
///    finite determinacy;
///  * negative: an explicit pair D₁, D₂ with V(D₁)=V(D₂), Q(D₁)≠Q(D₂)
///    refutes it. This header searches for such pairs exhaustively over all
///    instances within a domain bound.

/// A refuting pair.
struct DeterminacyCounterexample {
  Instance d1{Schema{}};
  Instance d2{Schema{}};
};

/// Verdict of a bounded search.
enum class SearchVerdict {
  /// No counterexample exists within the bound (determinacy holds on the
  /// searched fragment; silence, not proof).
  kNoneWithinBound,
  /// A counterexample was found: determinacy refuted outright.
  kCounterexampleFound,
  /// The instance budget ran out before covering the space.
  kBudgetExhausted,
};

struct DeterminacySearchResult {
  SearchVerdict verdict = SearchVerdict::kNoneWithinBound;
  std::optional<DeterminacyCounterexample> counterexample;
  /// Fed from the `search.instances` obs counter (the delta across this
  /// call), not a parallel tally.
  std::uint64_t instances_examined = 0;
};

/// Enumerates every instance over `base` within `options`, groups by view
/// image, and reports the first group on which Q disagrees. Reports
/// liveness through obs::ReportProgress ("search.instances"); a progress
/// callback returning false stops the search with kBudgetExhausted.
DeterminacySearchResult SearchDeterminacyCounterexample(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options);

/// A monotonicity violation of Q_V: V(D₁) ⊆ V(D₂) but Q(D₁) ⊄ Q(D₂).
/// Exhibits the paper's Propositions 5.8/5.12 phenomena. Only meaningful
/// when V determines Q on the searched fragment (callers should check).
struct MonotonicityViolation {
  Instance d1{Schema{}};
  Instance d2{Schema{}};
  Instance view_image1{Schema{}};
  Instance view_image2{Schema{}};
};

struct MonotonicitySearchResult {
  SearchVerdict verdict = SearchVerdict::kNoneWithinBound;
  std::optional<MonotonicityViolation> violation;
  std::uint64_t instances_examined = 0;
};

/// Searches for a pair witnessing non-monotonicity of the induced mapping
/// Q_V. Quadratic in the number of enumerated instances — keep bounds small.
MonotonicitySearchResult SearchMonotonicityViolation(
    const ViewSet& views, const Query& q, const Schema& base,
    const EnumerationOptions& options);

}  // namespace vqdr

#endif  // VQDR_CORE_FINITE_SEARCH_H_
