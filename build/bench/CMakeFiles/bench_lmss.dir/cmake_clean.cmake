file(REMOVE_RECURSE
  "CMakeFiles/bench_lmss.dir/bench_lmss.cc.o"
  "CMakeFiles/bench_lmss.dir/bench_lmss.cc.o.d"
  "bench_lmss"
  "bench_lmss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lmss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
