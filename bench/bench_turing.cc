// E-5.1: the Turing-machine construction — building and verifying
// computation-encoding instances (the semantics of φ_M), and the view /
// query evaluation on them. The shape to observe: instance size grows with
// |adom(R1)|² (the tape) times steps, and verification is linear in it —
// query answering through these views is "run the machine", i.e. Turing-
// complete in the machine parameter.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "gen/workloads.h"
#include "reductions/turing.h"

namespace vqdr {
namespace {

Relation InputGraph(int nodes) {
  Instance d = RandomGraph(nodes, 2 * nodes, 11);
  return d.Get("E");
}

void BM_BuildComputationInstance(benchmark::State& state) {
  SimpleTm tm = ComplementTm();
  Relation graph = InputGraph(static_cast<int>(state.range(0)));
  std::size_t tuples = 0;
  for (auto _ : state) {
    auto instance = BuildComputationInstance(tm, graph);
    benchmark::DoNotOptimize(instance);
    if (instance.ok()) tuples = instance->TupleCount();
  }
  state.counters["instance_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_BuildComputationInstance)->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_VerifyComputationInstance(benchmark::State& state) {
  SimpleTm tm = ComplementTm();
  Relation graph = InputGraph(static_cast<int>(state.range(0)));
  Instance instance = BuildComputationInstance(tm, graph).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyComputationInstance(tm, instance));
  }
}
BENCHMARK(BM_VerifyComputationInstance)->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_TuringQueryEval(benchmark::State& state) {
  SimpleTm tm = ComplementTm();
  Query q = TuringQuery(tm);
  Relation graph = InputGraph(static_cast<int>(state.range(0)));
  Instance instance = BuildComputationInstance(tm, graph).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Eval(instance));
  }
}
BENCHMARK(BM_TuringQueryEval)->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

void BM_TmSimulation(benchmark::State& state) {
  // The raw substrate: machine steps on a growing tape.
  SimpleTm tm = ComplementTm();
  std::string input(static_cast<std::size_t>(state.range(0)), '0');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tm.Run(input, static_cast<int>(input.size()) + 8,
               static_cast<int>(input.size()) + 8));
  }
  state.counters["tape_cells"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TmSimulation)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("turing");
