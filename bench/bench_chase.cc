// E-3.3 / E-3.6: the chase machinery — V-inverse cost and the growth of
// the Theorem 3.3 chain {D_k, S_k, S'_k, D'_k} with the level k.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "chase/chain.h"
#include "chase/view_inverse.h"
#include "gen/workloads.h"

namespace vqdr {
namespace {

// Single V-inverse chase of a path view image of growing size.
void BM_ViewInverse(benchmark::State& state) {
  ViewSet views = PathViews(2);
  Instance d = PathInstance(static_cast<int>(state.range(0)));
  Instance s = views.Apply(d);
  Schema chase_schema = ChaseSchema(views, d.schema());
  for (auto _ : state) {
    ValueFactory factory;
    Instance empty(chase_schema);
    Instance result = ViewInverse(views, empty, s, factory);
    benchmark::DoNotOptimize(result);
  }
  state.counters["view_tuples"] = static_cast<double>(s.TupleCount());
}
BENCHMARK(BM_ViewInverse)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

// Chain construction depth: the instances grow at each level; this is the
// engine behind the paper's D_∞ / D'_∞ separation argument.
void BM_ChaseChainDepth(benchmark::State& state) {
  ViewSet views;
  views.Add("P1", Query::FromCq(ChainQuery(1, "E", "P1")));
  views.Add("P3", Query::FromCq(ChainQuery(3, "E", "P3")));
  ConjunctiveQuery q = ChainQuery(2);
  int levels = static_cast<int>(state.range(0));
  std::size_t final_size = 0;
  for (auto _ : state) {
    ValueFactory factory;
    ChaseChain chain = BuildChaseChain(views, q, levels, factory);
    final_size = chain.d_prime.back().TupleCount();
    benchmark::DoNotOptimize(chain);
  }
  state.counters["final_dprime_tuples"] = static_cast<double>(final_size);
}
BENCHMARK(BM_ChaseChainDepth)->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

// Chase of a random graph's view image: realistic fan-out.
void BM_ViewInverseRandomGraph(benchmark::State& state) {
  ViewSet views = PathViews(2);
  Instance d = RandomGraph(static_cast<int>(state.range(0)),
                           2 * static_cast<int>(state.range(0)), /*seed=*/7);
  Instance s = views.Apply(d);
  Schema chase_schema = ChaseSchema(views, d.schema());
  for (auto _ : state) {
    ValueFactory factory;
    Instance empty(chase_schema);
    benchmark::DoNotOptimize(ViewInverse(views, empty, s, factory));
  }
  state.counters["view_tuples"] = static_cast<double>(s.TupleCount());
}
BENCHMARK(BM_ViewInverseRandomGraph)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vqdr

VQDR_BENCH_MAIN("chase");
