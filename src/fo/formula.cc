#include "fo/formula.h"

#include <functional>
#include <sstream>

#include "base/check.h"

namespace vqdr {

namespace {

FoPtr Make(FoFormula::Kind kind) {
  struct Access : FoFormula {
    explicit Access(Kind k) : FoFormula(k) {}
  };
  return std::make_shared<Access>(kind);
}

// Mutable access during construction only.
FoFormula* Mut(const FoPtr& p) { return const_cast<FoFormula*>(p.get()); }

}  // namespace

FoPtr FoFormula::True() { return Make(Kind::kTrue); }
FoPtr FoFormula::False() { return Make(Kind::kFalse); }

FoPtr FoFormula::MakeAtom(Atom atom) {
  FoPtr p = Make(Kind::kAtom);
  Mut(p)->atom_ = std::move(atom);
  return p;
}

FoPtr FoFormula::Eq(Term lhs, Term rhs) {
  FoPtr p = Make(Kind::kEquals);
  Mut(p)->lhs_ = std::move(lhs);
  Mut(p)->rhs_ = std::move(rhs);
  return p;
}

FoPtr FoFormula::Not(FoPtr child) {
  VQDR_CHECK(child != nullptr);
  FoPtr p = Make(Kind::kNot);
  Mut(p)->children_ = {std::move(child)};
  return p;
}

FoPtr FoFormula::And(std::vector<FoPtr> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  FoPtr p = Make(Kind::kAnd);
  Mut(p)->children_ = std::move(children);
  return p;
}

FoPtr FoFormula::Or(std::vector<FoPtr> children) {
  if (children.empty()) return False();
  if (children.size() == 1) return children[0];
  FoPtr p = Make(Kind::kOr);
  Mut(p)->children_ = std::move(children);
  return p;
}

FoPtr FoFormula::Implies(FoPtr lhs, FoPtr rhs) {
  FoPtr p = Make(Kind::kImplies);
  Mut(p)->children_ = {std::move(lhs), std::move(rhs)};
  return p;
}

FoPtr FoFormula::Iff(FoPtr lhs, FoPtr rhs) {
  FoPtr p = Make(Kind::kIff);
  Mut(p)->children_ = {std::move(lhs), std::move(rhs)};
  return p;
}

FoPtr FoFormula::Exists(std::vector<std::string> vars, FoPtr body) {
  if (vars.empty()) return body;
  FoPtr p = Make(Kind::kExists);
  Mut(p)->vars_ = std::move(vars);
  Mut(p)->children_ = {std::move(body)};
  return p;
}

FoPtr FoFormula::Forall(std::vector<std::string> vars, FoPtr body) {
  if (vars.empty()) return body;
  FoPtr p = Make(Kind::kForall);
  Mut(p)->vars_ = std::move(vars);
  Mut(p)->children_ = {std::move(body)};
  return p;
}

const Atom& FoFormula::atom() const {
  VQDR_CHECK(kind_ == Kind::kAtom);
  return atom_;
}

const Term& FoFormula::lhs() const {
  VQDR_CHECK(kind_ == Kind::kEquals);
  return lhs_;
}

const Term& FoFormula::rhs() const {
  VQDR_CHECK(kind_ == Kind::kEquals);
  return rhs_;
}

std::set<std::string> FoFormula::FreeVariables() const {
  std::set<std::string> free;
  std::function<void(const FoFormula&, std::set<std::string>&)> visit =
      [&](const FoFormula& f, std::set<std::string>& bound) {
        switch (f.kind_) {
          case Kind::kTrue:
          case Kind::kFalse:
            return;
          case Kind::kAtom:
            for (const Term& t : f.atom_.args) {
              if (t.is_var() && bound.count(t.var()) == 0) free.insert(t.var());
            }
            return;
          case Kind::kEquals:
            for (const Term* t : {&f.lhs_, &f.rhs_}) {
              if (t->is_var() && bound.count(t->var()) == 0) {
                free.insert(t->var());
              }
            }
            return;
          case Kind::kExists:
          case Kind::kForall: {
            std::set<std::string> inner = bound;
            for (const std::string& v : f.vars_) inner.insert(v);
            visit(*f.children_[0], inner);
            return;
          }
          default:
            for (const FoPtr& c : f.children_) visit(*c, bound);
            return;
        }
      };
  std::set<std::string> bound;
  visit(*this, bound);
  return free;
}

std::set<Value> FoFormula::Constants() const {
  std::set<Value> constants;
  std::function<void(const FoFormula&)> visit = [&](const FoFormula& f) {
    if (f.kind_ == Kind::kAtom) {
      for (const Term& t : f.atom_.args) {
        if (t.is_const()) constants.insert(t.constant());
      }
    } else if (f.kind_ == Kind::kEquals) {
      if (f.lhs_.is_const()) constants.insert(f.lhs_.constant());
      if (f.rhs_.is_const()) constants.insert(f.rhs_.constant());
    }
    for (const FoPtr& c : f.children_) visit(*c);
  };
  visit(*this);
  return constants;
}

Schema FoFormula::UsedSchema() const {
  Schema schema;
  std::function<void(const FoFormula&)> visit = [&](const FoFormula& f) {
    if (f.kind_ == Kind::kAtom) {
      schema.Add(f.atom_.predicate, f.atom_.arity());
    }
    for (const FoPtr& c : f.children_) visit(*c);
  };
  visit(*this);
  return schema;
}

bool FoFormula::IsExistential() const {
  // positive=true means the subformula occurs under an even number of
  // negations (counting the left side of -> as negative; <-> mixes both).
  std::function<bool(const FoFormula&, bool)> ok = [&](const FoFormula& f,
                                                       bool positive) -> bool {
    switch (f.kind_) {
      case Kind::kTrue:
      case Kind::kFalse:
      case Kind::kAtom:
      case Kind::kEquals:
        return true;
      case Kind::kNot:
        return ok(*f.children_[0], !positive);
      case Kind::kAnd:
      case Kind::kOr: {
        for (const FoPtr& c : f.children_) {
          if (!ok(*c, positive)) return false;
        }
        return true;
      }
      case Kind::kImplies:
        return ok(*f.children_[0], !positive) && ok(*f.children_[1], positive);
      case Kind::kIff:
        // Both polarities occur on both sides.
        return ok(*f.children_[0], true) && ok(*f.children_[0], false) &&
               ok(*f.children_[1], true) && ok(*f.children_[1], false);
      case Kind::kExists:
        return positive && ok(*f.children_[0], positive);
      case Kind::kForall:
        return !positive && ok(*f.children_[0], positive);
    }
    return false;
  };
  return ok(*this, true);
}

FoPtr FoFormula::RenameRelations(
    const std::function<std::string(const std::string&)>& rename) const {
  switch (kind_) {
    case Kind::kTrue:
      return True();
    case Kind::kFalse:
      return False();
    case Kind::kAtom: {
      Atom renamed = atom_;
      renamed.predicate = rename(atom_.predicate);
      return MakeAtom(std::move(renamed));
    }
    case Kind::kEquals:
      return Eq(lhs_, rhs_);
    case Kind::kNot:
      return Not(children_[0]->RenameRelations(rename));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FoPtr> kids;
      kids.reserve(children_.size());
      for (const FoPtr& c : children_) {
        kids.push_back(c->RenameRelations(rename));
      }
      return kind_ == Kind::kAnd ? And(std::move(kids)) : Or(std::move(kids));
    }
    case Kind::kImplies:
      return Implies(children_[0]->RenameRelations(rename),
                     children_[1]->RenameRelations(rename));
    case Kind::kIff:
      return Iff(children_[0]->RenameRelations(rename),
                 children_[1]->RenameRelations(rename));
    case Kind::kExists:
      return Exists(vars_, children_[0]->RenameRelations(rename));
    case Kind::kForall:
      return Forall(vars_, children_[0]->RenameRelations(rename));
  }
  VQDR_CHECK(false) << "unreachable";
  return nullptr;
}

std::string FoFormula::ToString() const {
  std::ostringstream out;
  switch (kind_) {
    case Kind::kTrue:
      out << "true";
      break;
    case Kind::kFalse:
      out << "false";
      break;
    case Kind::kAtom:
      out << atom_.ToString();
      break;
    case Kind::kEquals:
      out << lhs_.ToString() << " = " << rhs_.ToString();
      break;
    case Kind::kNot:
      out << "!(" << children_[0]->ToString() << ")";
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      out << "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << (kind_ == Kind::kAnd ? " & " : " | ");
        out << children_[i]->ToString();
      }
      out << ")";
      break;
    }
    case Kind::kImplies:
      out << "(" << children_[0]->ToString() << " -> "
          << children_[1]->ToString() << ")";
      break;
    case Kind::kIff:
      out << "(" << children_[0]->ToString() << " <-> "
          << children_[1]->ToString() << ")";
      break;
    case Kind::kExists:
    case Kind::kForall: {
      out << (kind_ == Kind::kExists ? "exists " : "forall ");
      for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (i > 0) out << ", ";
        out << vars_[i];
      }
      out << " . " << children_[0]->ToString();
      break;
    }
  }
  return out.str();
}

std::string FoQuery::ToString() const {
  std::ostringstream out;
  out << head_name << "(";
  for (std::size_t i = 0; i < free_vars.size(); ++i) {
    if (i > 0) out << ", ";
    out << free_vars[i];
  }
  out << ") := " << (formula ? formula->ToString() : "<null>");
  return out.str();
}

}  // namespace vqdr
