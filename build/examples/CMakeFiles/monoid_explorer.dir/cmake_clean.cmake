file(REMOVE_RECURSE
  "CMakeFiles/monoid_explorer.dir/monoid_explorer.cpp.o"
  "CMakeFiles/monoid_explorer.dir/monoid_explorer.cpp.o.d"
  "monoid_explorer"
  "monoid_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monoid_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
