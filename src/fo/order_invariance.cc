#include "fo/order_invariance.h"

#include <algorithm>

#include "fo/evaluator.h"

namespace vqdr {

Instance WithStrictOrder(const Instance& db, const std::string& order_rel,
                         const std::vector<Value>& ranked) {
  Schema schema = db.schema();
  schema.Add(order_rel, 2);
  Instance result(schema);
  for (const RelationDecl& d : db.schema().decls()) {
    result.Set(d.name, db.Get(d.name));
  }
  Relation order(2);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    for (std::size_t j = i + 1; j < ranked.size(); ++j) {
      order.Insert(Tuple{ranked[i], ranked[j]});
    }
  }
  result.Set(order_rel, order);
  return result;
}

OrderInvarianceResult CheckOrderInvariance(const FoQuery& q,
                                           const Instance& db,
                                           const std::string& order_rel) {
  OrderInvarianceResult result;
  std::set<Value> adom_set = db.ActiveDomain();
  std::vector<Value> ranked(adom_set.begin(), adom_set.end());

  bool first = true;
  result.invariant = true;
  do {
    Instance ordered = WithStrictOrder(db, order_rel, ranked);
    Relation answer = EvaluateFo(q, ordered);
    ++result.orders_checked;
    if (first) {
      result.answer = answer;
      first = false;
    } else if (answer != result.answer) {
      result.invariant = false;
      return result;
    }
  } while (std::next_permutation(ranked.begin(), ranked.end()));
  return result;
}

}  // namespace vqdr
