# Empty dependencies file for test_evaluator_crosscheck.
# This may be replaced when dependencies are built.
