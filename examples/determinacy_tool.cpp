// A command-line determinacy analyst: reads a scenario (schema, views,
// query) from a file or stdin and runs the full battery — chase decision,
// rewriting synthesis, bounded refutation search, monotonicity probe.
//
// Scenario format (line oriented; '#' comments):
//
//   schema R/2 P/1
//   view   V1(x) :- R(x, y)
//   view   V2(x) :- P(x)
//   query  Q(x) :- R(x, y), P(y)
//   bound  2            # optional search domain size (default 2)
//
// Usage:  ./build/examples/determinacy_tool [flags] [scenario-file]
//         (no scenario file: reads stdin)
//
// Flags (all optional; see DESIGN.md §10):
//   --explain=PATH   write the decision-provenance log as JSON to PATH
//                    ('-' = stdout): chase levels, the witness homomorphism
//                    or refuting instance behind the verdict, memo probes.
//   --profile        record trace spans during the battery and print the
//                    aggregated span-tree profile afterwards.
//   --metrics        print the battery's counters/histograms in Prometheus
//                    text exposition format afterwards.
//   --ops            print the live-telemetry operation table afterwards
//                    (DESIGN.md §11): the battery's registry entry with its
//                    phase, heartbeats, budget state, and per-op counters.
//                    For in-flight inspection of a long run, use
//                    VQDR_OPS_DUMP_MS=<n> (periodic JSON dump to stderr) or
//                    VQDR_WATCHDOG_MS=<n> (stall reports) instead.

#include <fstream>
#include <iostream>
#include <sstream>

#include "base/string_util.h"
#include "core/report.h"
#include "cq/parser.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"

using namespace vqdr;

namespace {

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string explain_path;
  bool want_explain = false;
  bool want_profile = false;
  bool want_metrics = false;
  bool want_ops = false;
  std::string scenario_path;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--profile") {
      want_profile = true;
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg == "--ops") {
      want_ops = true;
    } else if (arg == "--explain" || StartsWith(arg, "--explain=")) {
      want_explain = true;
      explain_path = arg == "--explain" ? "-" : std::string(arg.substr(10));
    } else if (StartsWith(arg, "--")) {
      return Fail("unknown flag " + std::string(arg) +
                  " (known: --explain[=PATH], --profile, --metrics, --ops)");
    } else if (scenario_path.empty()) {
      scenario_path = std::string(arg);
    } else {
      return Fail("at most one scenario file");
    }
  }

  std::istream* in = &std::cin;
  std::ifstream file;
  if (!scenario_path.empty()) {
    file.open(scenario_path);
    if (!file) return Fail("cannot open " + scenario_path);
    in = &file;
  }

  NamePool pool;
  Schema base;
  ViewSet views;
  std::optional<ConjunctiveQuery> query;
  int bound = 2;

  std::string line;
  int line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    auto err = [&](const std::string& m) {
      return Fail("line " + std::to_string(line_no) + ": " + m);
    };

    if (StartsWith(text, "schema ")) {
      for (const std::string& piece : Split(text.substr(7), ' ')) {
        std::string_view decl = StripWhitespace(piece);
        if (decl.empty()) continue;
        std::size_t slash = decl.find('/');
        if (slash == std::string_view::npos) {
          return err("schema entries look like Name/arity");
        }
        base.Add(std::string(decl.substr(0, slash)),
                 std::atoi(std::string(decl.substr(slash + 1)).c_str()));
      }
    } else if (StartsWith(text, "view ")) {
      auto q = ParseCq(text.substr(5), pool);
      if (!q.ok()) return err(q.status().message());
      if (!q->IsPureCq()) {
        return err("the analysis battery requires pure CQ views");
      }
      std::string name = q->head_name();
      views.Add(std::move(name), Query::FromCq(std::move(q).value()));
    } else if (StartsWith(text, "query ")) {
      auto q = ParseCq(text.substr(6), pool);
      if (!q.ok()) return err(q.status().message());
      if (!q->IsPureCq()) return err("the query must be a pure CQ");
      query = std::move(q).value();
    } else if (StartsWith(text, "bound ")) {
      bound = std::atoi(std::string(text.substr(6)).c_str());
      if (bound < 1 || bound > 4) return err("bound must be 1..4");
    } else {
      return err("expected 'schema', 'view', 'query' or 'bound'");
    }
  }

  if (!query.has_value()) return Fail("no query given");
  if (views.empty()) return Fail("no views given");
  if (base.decls().empty()) base = query->BodySchema();

  std::cout << "schema: " << base.ToString() << "\nviews:\n"
            << views.ToString() << "query: " << CqToString(*query, pool)
            << "\n\n";

  if (want_profile) {
    obs::DrainTraceEvents();  // start the profile window clean
    obs::EnableTracing();
  }
  obs::MetricsSnapshot metrics_before = obs::SnapshotMetrics();
  // Retain the battery's registry entry after it completes so --ops has
  // something to show for a finished run.
  if (want_ops) obs::SetKeepCompletedOps(16);

  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = bound;
  opts.explain = want_explain;
  DeterminacyReport report = AnalyzeDeterminacy(views, *query, base, opts);
  std::cout << report.Summary() << "\n";

  if (report.rewriting.has_value()) {
    std::cout << "\nrewriting: " << CqToString(*report.rewriting, pool)
              << "\n";
  }
  if (report.counterexample.has_value()) {
    std::cout << "\ncounterexample pair (equal view images, different "
                 "answers):\nD1:\n"
              << InstanceToString(report.counterexample->d1, pool) << "D2:\n"
              << InstanceToString(report.counterexample->d2, pool);
  }
  if (report.monotonicity_violation.has_value()) {
    std::cout << "\nmonotonicity violation of Q_V found (no monotonic "
                 "rewriting language suffices):\nD1:\n"
              << InstanceToString(report.monotonicity_violation->d1, pool)
              << "D2:\n"
              << InstanceToString(report.monotonicity_violation->d2, pool);
  }

  if (want_explain) {
    std::string json = report.explain.ToJson();
    if (explain_path == "-" || explain_path.empty()) {
      std::cout << "\n" << json << "\n";
    } else {
      std::ofstream out(explain_path, std::ios::trunc);
      if (!out) return Fail("cannot open " + explain_path);
      out << json << "\n";
      std::cout << "\nexplain log (" << report.explain.size()
                << " events) written to " << explain_path << "\n";
    }
  }

  if (want_profile) {
    obs::Profile profile = obs::BuildProfile(obs::DrainTraceEvents());
    std::cout << "\n[profile]\n" << obs::RenderProfileText(profile);
  }

  if (want_metrics) {
    std::cout << "\n[prometheus]\n"
              << obs::ExportPrometheusText(
                     obs::SnapshotDelta(metrics_before));
  }

  if (want_ops) {
    // Completed ops first (the battery just finished), then anything still
    // in flight (e.g. a background dump started via env).
    std::vector<obs::OpSnapshot> ops = obs::RecentCompletedOps();
    std::vector<obs::OpSnapshot> live = obs::SnapshotOps();
    ops.insert(ops.end(), live.begin(), live.end());
    std::cout << "\n[ops]\n" << obs::RenderOpsText(ops);
  }
  return 0;
}
