#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace vqdr::obs::json {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Peek(char c) { return pos < text.size() && text[pos] == c; }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return Fail("dangling escape");
        char esc = text[pos++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return Fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // The obs emitters only \u-escape control characters; decode the
            // ASCII range and map anything wider to '?' rather than UTF-8.
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    std::size_t start = pos;
    if (Peek('-')) ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    bool integral = true;
    if (Peek('.')) {
      integral = false;
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (Peek('e') || Peek('E')) {
      integral = false;
      ++pos;
      if (Peek('+') || Peek('-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return Fail("bad number");
    }
    std::string token(text.substr(start, pos - start));
    out->kind = Value::Kind::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      out->int_value = std::strtoll(token.c_str(), nullptr, 10);
      out->is_int = true;
    } else {
      out->int_value = static_cast<std::int64_t>(out->number);
      out->is_int = false;
    }
    return true;
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out->kind = Value::Kind::kObject;
      SkipWs();
      if (Consume('}')) return true;
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (!Consume(':')) return Fail("expected ':'");
        Value member;
        if (!ParseValue(&member, depth + 1)) return false;
        out->object.emplace_back(std::move(key), std::move(member));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return true;
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->kind = Value::Kind::kArray;
      SkipWs();
      if (Consume(']')) return true;
      while (true) {
        Value element;
        if (!ParseValue(&element, depth + 1)) return false;
        out->array.push_back(std::move(element));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return true;
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return Fail("bad literal");
      out->kind = Value::Kind::kBool;
      out->bool_value = true;
      return true;
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return Fail("bad literal");
      out->kind = Value::Kind::kBool;
      out->bool_value = false;
      return true;
    }
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return Fail("bad literal");
      out->kind = Value::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }
};

}  // namespace

const Value* Value::Find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::int64_t Value::IntOr(std::string_view key, std::int64_t fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->IsNumber() ? v->int_value : fallback;
}

std::string Value::StringOr(std::string_view key, std::string fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->IsString() ? v->string_value : fallback;
}

std::optional<Value> Parse(std::string_view text, std::string* error) {
  Parser parser;
  parser.text = text;
  Value result;
  if (!parser.ParseValue(&result, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.SkipWs();
  if (parser.pos != text.size()) {
    if (error != nullptr) *error = "trailing garbage after document";
    return std::nullopt;
  }
  return result;
}

}  // namespace vqdr::obs::json
