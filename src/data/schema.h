#ifndef VQDR_DATA_SCHEMA_H_
#define VQDR_DATA_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

namespace vqdr {

/// Declaration of a single relation symbol.
struct RelationDecl {
  std::string name;
  int arity = 0;

  friend bool operator==(const RelationDecl& a, const RelationDecl& b) {
    return a.name == b.name && a.arity == b.arity;
  }
};

/// A database schema σ: a finite set of relation symbols with arities,
/// kept in insertion order for deterministic printing.
class Schema {
 public:
  Schema() = default;

  /// A schema with the given declarations; names must be distinct.
  Schema(std::initializer_list<RelationDecl> decls);

  /// Adds a relation symbol. Re-adding an identical declaration is a no-op;
  /// re-adding with a different arity aborts.
  void Add(const std::string& name, int arity);

  /// The arity of `name`, or nullopt if absent.
  std::optional<int> ArityOf(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return ArityOf(name).has_value();
  }

  const std::vector<RelationDecl>& decls() const { return decls_; }
  std::size_t size() const { return decls_.size(); }

  /// Union of two schemas; conflicting arities abort.
  Schema UnionWith(const Schema& other) const;

  /// A copy with every relation name prefixed (used for the twin-schema
  /// σ₁/σ₂ constructions of Section 4).
  Schema WithPrefix(const std::string& prefix) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.decls_ == b.decls_;
  }

  /// Renders as "{R/2, P/0}".
  std::string ToString() const;

 private:
  std::vector<RelationDecl> decls_;
};

}  // namespace vqdr

#endif  // VQDR_DATA_SCHEMA_H_
