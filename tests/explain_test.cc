// End-to-end tests for decision provenance (DESIGN.md §10): the explain
// events the containment sweep, chase chain, determinacy decision, bounded
// searches, and the full analysis battery record — and, centrally, that
// every recorded containment witness REPLAYS: the homomorphism in the log
// re-checks against the instance in the log, before and after a JSON round
// trip. Under -DVQDR_OBS=OFF the same calls must leave the logs empty.

#include <gtest/gtest.h>

#include <string>

#include "chase/chain.h"
#include "core/determinacy.h"
#include "core/finite_search.h"
#include "core/report.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/workloads.h"
#include "obs/explain.h"

#ifndef VQDR_MEMO_DISABLED
#include "memo/store.h"
#endif

namespace vqdr {
namespace {

class ExplainFixture : public ::testing::Test {
 protected:
  ConjunctiveQuery Cq(const std::string& text) {
    auto q = ParseCq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message() << " in: " << text;
    return q.value();
  }

  UnionQuery Ucq(const std::string& text) {
    auto q = ParseUcq(text, pool_);
    EXPECT_TRUE(q.ok()) << q.status().message() << " in: " << text;
    return q.value();
  }

  ViewSet CqViews(const std::vector<std::string>& defs) {
    ViewSet views;
    for (const std::string& def : defs) {
      ConjunctiveQuery q = Cq(def);
      views.Add(q.head_name(), Query::FromCq(q));
    }
    return views;
  }

  NamePool pool_;
};

// Replays every witness in `log` and counts events by kind. This is the
// acceptance check: a witness that does not verify means the log lied about
// the decision it claims to explain.
struct LogAudit {
  int witnesses = 0;
  int refutations = 0;
  int chase_levels = 0;
  int decisions = 0;
  int counterexamples = 0;
  int memo_events = 0;
  int failed_verifications = 0;
  std::string first_error;
};

LogAudit Audit(const obs::ExplainLog& log) {
  LogAudit audit;
  for (const obs::ExplainEvent& e : log.events()) {
    switch (e.kind) {
      case obs::ExplainKind::kWitness:
        ++audit.witnesses;
        break;
      case obs::ExplainKind::kRefutation:
        ++audit.refutations;
        break;
      case obs::ExplainKind::kChaseLevel:
        ++audit.chase_levels;
        break;
      case obs::ExplainKind::kDecision:
        ++audit.decisions;
        break;
      case obs::ExplainKind::kCounterexample:
        ++audit.counterexamples;
        break;
      case obs::ExplainKind::kMemo:
        ++audit.memo_events;
        break;
      default:
        break;
    }
    if (e.witness.has_value()) {
      std::string error;
      if (!e.witness->Verify(&error)) {
        ++audit.failed_verifications;
        if (audit.first_error.empty()) audit.first_error = error;
      }
    }
  }
  return audit;
}

TEST_F(ExplainFixture, ContainmentRecordsReplayableWitnessPerPattern) {
  ConjunctiveQuery triangle = Cq("Q(x) :- E(x, y), E(y, z), E(z, x)");
  ConjunctiveQuery walk = Cq("Q(x) :- E(x, u), E(u, v)");

  obs::ExplainLog log;
  CqContainmentOptions options;
  options.explain = &log;
  EXPECT_TRUE(CqContainedIn(triangle, walk, options));

  if (!obs::kExplainEnabled) {
    EXPECT_TRUE(log.empty());
    return;
  }
  LogAudit audit = Audit(log);
  // Pure CQs: one canonical database, one passing pattern, zero refutations.
  EXPECT_EQ(audit.witnesses, 1);
  EXPECT_EQ(audit.refutations, 0);
  EXPECT_EQ(audit.failed_verifications, 0) << audit.first_error;
}

TEST_F(ExplainFixture, NonContainmentRecordsTheRefutingCanonicalDatabase) {
  ConjunctiveQuery walk = Cq("Q(x) :- E(x, u), E(u, v)");
  ConjunctiveQuery triangle = Cq("Q(x) :- E(x, y), E(y, z), E(z, x)");

  obs::ExplainLog log;
  CqContainmentOptions options;
  options.explain = &log;
  EXPECT_FALSE(CqContainedIn(walk, triangle, options));

  if (!obs::kExplainEnabled) return;
  LogAudit audit = Audit(log);
  EXPECT_EQ(audit.refutations, 1);
  // The refutation carries the canonical database ([Q] of the walk: 2 facts).
  bool found_instance = false;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind == obs::ExplainKind::kRefutation) {
      EXPECT_EQ(e.instance.size(), 2u);
      found_instance = true;
    }
  }
  EXPECT_TRUE(found_instance);
}

TEST_F(ExplainFixture, DisequalitySweepRecordsEveryPatternCheck) {
  // With ≠ on the left, the sweep enumerates identification patterns; each
  // one gets its own witness or refutation and all witnesses replay.
  ConjunctiveQuery left = Cq("Q(x, y) :- E(x, y), x != y");
  ConjunctiveQuery right = Cq("Q(x, y) :- E(x, y)");

  obs::ExplainLog log;
  CqContainmentOptions options;
  options.explain = &log;
  EXPECT_TRUE(CqContainedIn(left, right, options));

  if (!obs::kExplainEnabled) return;
  LogAudit audit = Audit(log);
  EXPECT_GE(audit.witnesses, 1);
  EXPECT_EQ(audit.failed_verifications, 0) << audit.first_error;
}

TEST_F(ExplainFixture, UcqWitnessNamesTheWitnessingDisjunct) {
  UnionQuery q1 = Ucq("Q(x) :- E(x, y), E(y, x)");
  UnionQuery q2 = Ucq("Q(x) :- P(x) | Q(x) :- E(x, u)");

  obs::ExplainLog log;
  CqContainmentOptions options;
  options.explain = &log;
  EXPECT_TRUE(UcqContainedIn(q1, q2, options));

  if (!obs::kExplainEnabled) return;
  bool found = false;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind != obs::ExplainKind::kWitness) continue;
    found = true;
    EXPECT_EQ(e.label, "ucq.sub");
    // The cycle maps into the edge disjunct (index 1), not P.
    ASSERT_EQ(e.stats.count("disjunct"), 1u);
    EXPECT_EQ(e.stats.at("disjunct"), 1);
    ASSERT_TRUE(e.witness.has_value());
    std::string error;
    EXPECT_TRUE(e.witness->Verify(&error)) << error;
  }
  EXPECT_TRUE(found);
}

TEST_F(ExplainFixture, GovernedContainmentRecordsTheSameProvenance) {
  ConjunctiveQuery triangle = Cq("Q(x) :- E(x, y), E(y, z), E(z, x)");
  ConjunctiveQuery walk = Cq("Q(x) :- E(x, u), E(u, v)");

  obs::ExplainLog log;
  CqContainmentOptions options;
  options.explain = &log;
  ContainmentResult result = CqContainedInGoverned(triangle, walk, options);
  EXPECT_TRUE(result.contained);
  EXPECT_EQ(result.outcome, guard::Outcome::kComplete);

  if (!obs::kExplainEnabled) return;
  LogAudit audit = Audit(log);
  EXPECT_EQ(audit.witnesses, 1);
  EXPECT_EQ(audit.failed_verifications, 0) << audit.first_error;
}

TEST_F(ExplainFixture, ChaseChainRecordsLevelSizesAndFreshNulls) {
  ViewSet views = CqViews({"V(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");

  obs::ExplainLog log;
  ChaseChainOptions options;
  options.levels = 2;
  options.explain = &log;
  ValueFactory factory;
  ChaseChain chain = BuildChaseChain(views, q, options, factory);
  ASSERT_EQ(chain.d.size(), 3u);

  if (!obs::kExplainEnabled) {
    EXPECT_TRUE(log.empty());
    return;
  }
  LogAudit audit = Audit(log);
  ASSERT_EQ(audit.chase_levels, 3);
  // Each event's recorded sizes match the chain it claims to describe.
  // Level 0 always mints nulls (freezing the query plus the first inverse);
  // deeper levels may hit the chase fixpoint and mint none, so only
  // non-negativity holds there.
  int level = 0;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind != obs::ExplainKind::kChaseLevel) continue;
    EXPECT_EQ(e.stats.at("level"), level);
    EXPECT_EQ(e.stats.at("d_facts"),
              static_cast<std::int64_t>(chain.d[level].TupleCount()));
    EXPECT_EQ(e.stats.at("d_prime_facts"),
              static_cast<std::int64_t>(chain.d_prime[level].TupleCount()));
    EXPECT_EQ(e.stats.at("s_facts"),
              static_cast<std::int64_t>(chain.s[level].TupleCount()));
    EXPECT_GE(e.stats.at("fresh_nulls"), level == 0 ? 1 : 0);
    ++level;
  }
}

TEST_F(ExplainFixture, DeterminedDecisionCarriesAVerifyingWitness) {
  ViewSet views = CqViews({"V(x, y) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");

  obs::ExplainLog log;
  auto result = DecideUnrestrictedDeterminacy(views, q, nullptr, {}, &log);
  EXPECT_TRUE(result.determined);

  if (!obs::kExplainEnabled) return;
  LogAudit audit = Audit(log);
  EXPECT_EQ(audit.decisions, 1);
  EXPECT_EQ(audit.failed_verifications, 0) << audit.first_error;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind != obs::ExplainKind::kDecision) continue;
    EXPECT_EQ(e.stats.at("determined"), 1);
    ASSERT_TRUE(e.witness.has_value());
    // The decision witness is exactly the Theorem 3.7 test: Q maps into the
    // chased-back inverse hitting the frozen head.
    EXPECT_EQ(e.witness->instance.size(),
              result.chase_inverse.TupleCount());
  }
}

TEST_F(ExplainFixture, UndeterminedDecisionCarriesTheChaseInverse) {
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");

  obs::ExplainLog log;
  auto result = DecideUnrestrictedDeterminacy(views, q, nullptr, {}, &log);
  EXPECT_FALSE(result.determined);

  if (!obs::kExplainEnabled) return;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind != obs::ExplainKind::kDecision) continue;
    EXPECT_EQ(e.stats.at("determined"), 0);
    EXPECT_FALSE(e.witness.has_value());
    EXPECT_EQ(e.instance.size(), result.chase_inverse.TupleCount());
  }
}

TEST_F(ExplainFixture, SearchRecordsTheCounterexamplePair) {
  // Parity example: P2 does not finitely determine the length-3 query, and
  // the bounded search finds a concrete refuting pair.
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");

  obs::ExplainLog log;
  EnumerationOptions options;
  options.domain_size = 2;
  options.explain = &log;
  DeterminacySearchResult result = SearchDeterminacyCounterexample(
      views, Query::FromCq(q), Schema{{"E", 2}}, options);

  if (!obs::kExplainEnabled) {
    EXPECT_TRUE(log.empty());
    return;
  }
  ASSERT_EQ(log.size(), 1u);
  const std::vector<obs::ExplainEvent> events = log.events();
  const obs::ExplainEvent& e = events[0];
  if (result.verdict == SearchVerdict::kCounterexampleFound) {
    EXPECT_EQ(e.kind, obs::ExplainKind::kCounterexample);
    ASSERT_TRUE(result.counterexample.has_value());
    EXPECT_EQ(e.instance.size(),
              result.counterexample->d1.TupleCount());
    EXPECT_EQ(e.instance2.size(),
              result.counterexample->d2.TupleCount());
  } else {
    EXPECT_EQ(e.kind, obs::ExplainKind::kNote);
  }
}

#ifndef VQDR_MEMO_DISABLED
TEST_F(ExplainFixture, MemoProbesAppearAsHitAndMissEvents) {
  ConjunctiveQuery triangle = Cq("Q(x) :- E(x, y), E(y, z), E(z, x)");
  ConjunctiveQuery walk = Cq("Q(x) :- E(x, u), E(u, v)");

  memo::Store store(64);
  obs::ExplainLog log;
  CqContainmentOptions options;
  options.explain = &log;
  options.memo.use = memo::Use::kOn;
  options.memo.store = &store;
  EXPECT_TRUE(CqContainedIn(triangle, walk, options));
  EXPECT_TRUE(CqContainedIn(triangle, walk, options));

  if (!obs::kExplainEnabled) return;
  int hits = 0, misses = 0;
  for (const obs::ExplainEvent& e : log.events()) {
    if (e.kind != obs::ExplainKind::kMemo) continue;
    e.stats.at("hit") == 1 ? ++hits : ++misses;
  }
  EXPECT_EQ(misses, 1);  // cold call
  EXPECT_EQ(hits, 1);    // warm call skips the sweep
}
#endif  // VQDR_MEMO_DISABLED

TEST_F(ExplainFixture, ReportLogSurvivesJsonRoundTripWithReplay) {
  // The full battery on the determined example, serialized and parsed back:
  // the acceptance criterion — each recorded homomorphism re-checks against
  // its recorded instance after the round trip.
  ViewSet views = CqViews({"V(x, y) :- E(x, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, z), E(z, y)");

  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = 2;
  opts.explain = true;
  DeterminacyReport report =
      AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);
  EXPECT_EQ(report.verdict, DeterminacyVerdict::kDeterminedWithRewriting);

  if (!obs::kExplainEnabled) {
    EXPECT_TRUE(report.explain.empty());
    return;
  }
  ASSERT_FALSE(report.explain.empty());
  // The battery closes with the verdict event.
  EXPECT_EQ(report.explain.events().back().label, "report.verdict");
  EXPECT_EQ(report.explain.events().back().detail,
            "determined (with rewriting)");

  std::string json = report.explain.ToJson();
  std::string error;
  auto parsed = obs::ExplainLog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), report.explain.size());

  LogAudit audit = Audit(*parsed);
  EXPECT_GE(audit.witnesses + audit.decisions, 1);
  EXPECT_EQ(audit.failed_verifications, 0) << audit.first_error;
  // And the round trip is lossless: re-serialization is byte-identical.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST_F(ExplainFixture, RefutedReportCarriesCounterexampleProvenance) {
  ViewSet views = CqViews({"P2(x, y) :- E(x, z), E(z, y)"});
  ConjunctiveQuery q = Cq("Q(x, y) :- E(x, a), E(a, b), E(b, y)");

  DeterminacyAnalysisOptions opts;
  opts.search.domain_size = 2;
  opts.explain = true;
  DeterminacyReport report =
      AnalyzeDeterminacy(views, q, Schema{{"E", 2}}, opts);

  if (!obs::kExplainEnabled) return;
  LogAudit audit = Audit(report.explain);
  EXPECT_EQ(audit.decisions, 2);  // the chase decision + the closing verdict
  if (report.verdict == DeterminacyVerdict::kRefuted) {
    EXPECT_EQ(audit.counterexamples, 1);
    EXPECT_EQ(report.explain.events().back().detail, "refuted");
  }
  EXPECT_EQ(audit.failed_verifications, 0) << audit.first_error;
}

TEST_F(ExplainFixture, NullSinkRecordsNothingAndCostsNothing) {
  // No explain sink: identical verdicts, no events anywhere (this is the
  // default path every existing caller takes).
  ConjunctiveQuery triangle = Cq("Q(x) :- E(x, y), E(y, z), E(z, x)");
  ConjunctiveQuery walk = Cq("Q(x) :- E(x, u), E(u, v)");
  CqContainmentOptions options;  // explain == nullptr
  EXPECT_TRUE(CqContainedIn(triangle, walk, options));
  EXPECT_FALSE(obs::Wants(options.explain));
}

}  // namespace
}  // namespace vqdr
