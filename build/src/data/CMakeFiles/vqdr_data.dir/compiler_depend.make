# Empty compiler generated dependencies file for vqdr_data.
# This may be replaced when dependencies are built.
