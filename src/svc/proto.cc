#include "svc/proto.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "obs/json.h"

namespace vqdr::svc {

namespace {

using obs::json::Value;

/// Re-serializes a scalar id for verbatim echoing. Strings and integers
/// cover every sane client; anything else is rejected so the echo can never
/// smuggle unvalidated JSON back out.
StatusOr<std::string> SerializeId(const Value& v) {
  if (v.IsString()) {
    std::string out;
    AppendJson(v.string_value, &out);
    return out;
  }
  if (v.IsNumber() && v.is_int) return std::to_string(v.int_value);
  return Status::InvalidArgument("\"id\" must be a string or an integer");
}

StatusOr<std::string> StringField(const Value& obj, std::string_view key) {
  const Value* v = obj.Find(key);
  if (v == nullptr) return std::string();
  if (!v->IsString()) {
    return Status::InvalidArgument("\"" + std::string(key) +
                                   "\" must be a string");
  }
  return v->string_value;
}

StatusOr<std::vector<std::string>> StringArrayField(const Value& obj,
                                                    std::string_view key) {
  const Value* v = obj.Find(key);
  std::vector<std::string> out;
  if (v == nullptr) return out;
  if (!v->IsArray()) {
    return Status::InvalidArgument("\"" + std::string(key) +
                                   "\" must be an array of strings");
  }
  out.reserve(v->array.size());
  for (const Value& e : v->array) {
    if (!e.IsString()) {
      return Status::InvalidArgument("\"" + std::string(key) +
                                     "\" must be an array of strings");
    }
    out.push_back(e.string_value);
  }
  return out;
}

Status ReadBudgetFields(const Value& obj, guard::BudgetSpec* spec) {
  struct IntField {
    const char* key;
    std::int64_t min;
  };
  static constexpr IntField kFields[] = {
      {"deadline_ms", 0},
      {"max_steps", 0},
      {"max_atoms", 0},
      {"max_chase_levels", 0},
  };
  for (const IntField& f : kFields) {
    const Value* v = obj.Find(f.key);
    if (v == nullptr) continue;
    if (!v->IsNumber() || !v->is_int || v->int_value < f.min) {
      return Status::InvalidArgument("\"" + std::string(f.key) +
                                     "\" must be a non-negative integer");
    }
    std::int64_t n = v->int_value;
    if (std::string_view(f.key) == "deadline_ms") {
      spec->wall_ms = n;
    } else if (std::string_view(f.key) == "max_steps") {
      spec->max_steps = static_cast<std::uint64_t>(n);
    } else if (std::string_view(f.key) == "max_atoms") {
      spec->max_atoms = static_cast<std::uint64_t>(n);
    } else {
      spec->max_chase_levels = static_cast<int>(n);
    }
  }
  return Status::Ok();
}

/// Reads the budget fields of `obj` into `spec` — flat ("max_steps": 10 on
/// the object itself) or grouped under a nested "budget" object; the nested
/// form wins field by field. Negative counts are rejected; absent fields
/// leave the spec's "unlimited" defaults.
Status ReadBudgetSpec(const Value& obj, guard::BudgetSpec* spec) {
  if (Status s = ReadBudgetFields(obj, spec); !s.ok()) return s;
  if (const Value* nested = obj.Find("budget")) {
    if (!nested->IsObject()) {
      return Status::InvalidArgument("\"budget\" must be an object");
    }
    if (Status s = ReadBudgetFields(*nested, spec); !s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Request> ParseRequest(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    return Status::InvalidArgument("request frame exceeds " +
                                   std::to_string(kMaxRequestBytes) +
                                   " bytes");
  }
  std::string error;
  std::optional<Value> doc = obs::json::Parse(line, &error);
  if (!doc.has_value()) {
    return Status::InvalidArgument("malformed JSON: " + error);
  }
  if (!doc->IsObject()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request req;
  const Value* op = doc->Find("op");
  if (op == nullptr || !op->IsString() || op->string_value.empty()) {
    return Status::InvalidArgument("\"op\" (string) is required");
  }
  req.op = op->string_value;

  if (const Value* id = doc->Find("id")) {
    StatusOr<std::string> s = SerializeId(*id);
    if (!s.ok()) return s.status();
    req.id = std::move(s).value();
  }

  StatusOr<std::string> tenant = StringField(*doc, "tenant");
  if (!tenant.ok()) return tenant.status();
  req.tenant = std::move(tenant).value();

  if (Status s = ReadBudgetSpec(*doc, &req.budget); !s.ok()) return s;

  const std::pair<const char*, std::string*> string_fields[] = {
      {"kind", &req.kind},     {"text", &req.text}, {"schema", &req.schema},
      {"query", &req.query},   {"q1", &req.q1},     {"q2", &req.q2},
  };
  for (auto& [key, dst] : string_fields) {
    StatusOr<std::string> s = StringField(*doc, key);
    if (!s.ok()) return s.status();
    *dst = std::move(s).value();
  }

  StatusOr<std::vector<std::string>> views = StringArrayField(*doc, "views");
  if (!views.ok()) return views.status();
  req.views = std::move(views).value();

  if (const Value* levels = doc->Find("levels")) {
    if (!levels->IsNumber() || !levels->is_int || levels->int_value < 0 ||
        levels->int_value > 64) {
      return Status::InvalidArgument("\"levels\" must be an integer in 0..64");
    }
    req.levels = static_cast<int>(levels->int_value);
  }

  if (const Value* items = doc->Find("items")) {
    if (!items->IsArray()) {
      return Status::InvalidArgument("\"items\" must be an array of objects");
    }
    req.items.reserve(items->array.size());
    for (const Value& e : items->array) {
      if (!e.IsObject()) {
        return Status::InvalidArgument(
            "\"items\" must be an array of objects");
      }
      BatchItem item;
      StatusOr<std::vector<std::string>> iv = StringArrayField(e, "views");
      if (!iv.ok()) return iv.status();
      item.views = std::move(iv).value();
      StatusOr<std::string> iq = StringField(e, "query");
      if (!iq.ok()) return iq.status();
      item.query = std::move(iq).value();
      if (Status s = ReadBudgetSpec(e, &item.budget); !s.ok()) return s;
      req.items.push_back(std::move(item));
    }
  }

  return req;
}

void AppendJson(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string SerializeResponse(const Response& r) {
  std::string out;
  out.push_back('{');
  if (!r.id.empty()) {
    out.append("\"id\":");
    out.append(r.id);  // pre-serialized scalar
    out.push_back(',');
  }
  out.append(r.ok ? "\"ok\":true" : "\"ok\":false");
  if (!r.code.empty()) {
    out.append(",\"code\":");
    AppendJson(r.code, &out);
  }
  if (!r.error.empty()) {
    out.append(",\"error\":");
    AppendJson(r.error, &out);
  }
  if (r.has_outcome) {
    out.append(",\"outcome\":");
    AppendJson(guard::OutcomeName(r.outcome), &out);
  }
  if (r.has_retry) {
    out.append(",\"retry_after_ms\":");
    out.append(std::to_string(r.retry_after_ms));
  }
  if (!r.result_json.empty()) {
    out.append(",\"result\":");
    out.append(r.result_json);
  }
  if (r.has_elapsed) {
    out.append(",\"elapsed_us\":");
    out.append(std::to_string(r.elapsed_us));
  }
  out.push_back('}');
  return out;
}

Response ErrorResponse(std::string code, std::string message) {
  Response r;
  r.ok = false;
  r.code = std::move(code);
  r.error = std::move(message);
  return r;
}

}  // namespace vqdr::svc
