#include "data/isomorphism.h"

#include <algorithm>

#include "base/check.h"

namespace vqdr {

namespace {

// Applies a candidate bijection and compares images.
bool MappingWorks(const Instance& a, const Instance& b,
                  const ValueBijection& map) {
  Instance image = a.Apply([&map](Value v) {
    auto it = map.find(v);
    VQDR_CHECK(it != map.end());
    return it->second;
  });
  return image == b;
}

}  // namespace

std::optional<ValueBijection> FindIsomorphism(const Instance& a,
                                              const Instance& b) {
  std::set<Value> adom_a_set = a.ActiveDomain();
  std::set<Value> adom_b_set = b.ActiveDomain();
  if (adom_a_set.size() != adom_b_set.size()) return std::nullopt;
  if (a.TupleCount() != b.TupleCount()) return std::nullopt;

  std::vector<Value> adom_a(adom_a_set.begin(), adom_a_set.end());
  std::vector<Value> adom_b(adom_b_set.begin(), adom_b_set.end());
  std::sort(adom_b.begin(), adom_b.end());
  // Try every bijection adom_a -> adom_b. Fine for the small instances this
  // library enumerates (n! with n <= ~8).
  do {
    ValueBijection map;
    for (std::size_t i = 0; i < adom_a.size(); ++i) map[adom_a[i]] = adom_b[i];
    if (MappingWorks(a, b, map)) return map;
  } while (std::next_permutation(adom_b.begin(), adom_b.end()));
  return std::nullopt;
}

bool AreIsomorphic(const Instance& a, const Instance& b) {
  return FindIsomorphism(a, b).has_value();
}

std::vector<ValueBijection> Automorphisms(const Instance& d) {
  std::vector<ValueBijection> result;
  std::set<Value> adom_set = d.ActiveDomain();
  std::vector<Value> source(adom_set.begin(), adom_set.end());
  std::vector<Value> target = source;
  do {
    ValueBijection map;
    for (std::size_t i = 0; i < source.size(); ++i) map[source[i]] = target[i];
    if (MappingWorks(d, d, map)) result.push_back(map);
  } while (std::next_permutation(target.begin(), target.end()));
  return result;
}

std::string CanonicalKey(const Instance& d) {
  std::set<Value> adom_set = d.ActiveDomain();
  std::vector<Value> adom(adom_set.begin(), adom_set.end());
  std::vector<Value> fresh;
  fresh.reserve(adom.size());
  for (std::size_t i = 0; i < adom.size(); ++i) {
    fresh.push_back(Value(static_cast<std::int64_t>(i) + 1));
  }
  std::string best;
  bool first = true;
  // adom is sorted; permute the assignment of canonical labels.
  std::vector<std::size_t> perm(adom.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  do {
    ValueBijection map;
    for (std::size_t i = 0; i < adom.size(); ++i) map[adom[i]] = fresh[perm[i]];
    Instance relabeled = d.Apply([&map](Value v) { return map.at(v); });
    std::string key = relabeled.ToKey();
    if (first || key < best) {
      best = std::move(key);
      first = false;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace vqdr
