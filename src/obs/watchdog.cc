#include "obs/watchdog.h"

#ifndef VQDR_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace vqdr::obs {

namespace {

// What "progress" means for one op: any movement in these fields re-arms
// the stall trigger.
struct ProgressSig {
  std::uint64_t heartbeats = 0;
  std::uint64_t tasks = 0;
  std::uint64_t budget_steps = 0;
  std::string phase;

  bool operator==(const ProgressSig& o) const {
    return heartbeats == o.heartbeats && tasks == o.tasks &&
           budget_steps == o.budget_steps && phase == o.phase;
  }
};

struct OpWatch {
  ProgressSig sig;
  std::chrono::steady_clock::time_point last_change;
  bool reported = false;
};

struct WatchdogState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool running = false;
  bool stop = false;
  std::shared_ptr<std::function<void(const StallReport&)>> callback;
  std::atomic<std::uint64_t> reports{0};

  static WatchdogState& Get() {
    static WatchdogState* s = new WatchdogState;  // leaked
    return *s;
  }
};

std::uint64_t UnixNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

ProgressSig SigOf(const OpSnapshot& op) {
  ProgressSig s;
  s.heartbeats = op.heartbeats;
  s.tasks = op.tasks;
  s.budget_steps = op.budget.steps;
  s.phase = op.phase;
  return s;
}

void EmitReport(const StallReport& report) {
  WatchdogState& w = WatchdogState::Get();
  w.reports.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<std::function<void(const StallReport&)>> cb;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    cb = w.callback;
  }
  if (cb != nullptr) {
    (*cb)(report);
    return;
  }
  std::string line = report.ToJson();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

void WatchLoop(std::uint64_t stall_ms, std::uint64_t poll_ms) {
  WatchdogState& w = WatchdogState::Get();
  std::map<OpId, OpWatch> watched;
  std::unique_lock<std::mutex> lock(w.mu);
  while (!w.stop) {
    w.cv.wait_for(lock, std::chrono::milliseconds(poll_ms),
                  [&] { return w.stop; });
    if (w.stop) break;
    lock.unlock();

    auto now = std::chrono::steady_clock::now();
    std::vector<OpSnapshot> ops = SnapshotOps();
    // Drop state for ops that finished.
    for (auto it = watched.begin(); it != watched.end();) {
      bool live = false;
      for (const OpSnapshot& op : ops) {
        if (op.id == it->first) {
          live = true;
          break;
        }
      }
      it = live ? std::next(it) : watched.erase(it);
    }
    for (const OpSnapshot& op : ops) {
      ProgressSig sig = SigOf(op);
      auto [it, fresh] = watched.try_emplace(op.id);
      OpWatch& watch = it->second;
      if (fresh || !(watch.sig == sig)) {
        watch.sig = std::move(sig);
        watch.last_change = now;
        watch.reported = false;
        continue;
      }
      if (watch.reported) continue;
      auto quiet = std::chrono::duration_cast<std::chrono::milliseconds>(
                       now - watch.last_change)
                       .count();
      if (quiet < static_cast<std::int64_t>(stall_ms)) continue;
      watch.reported = true;  // exactly one report per stall
      StallReport report;
      report.unix_ms = UnixNowMs();
      report.stall_ms = stall_ms;
      report.quiet_ms = static_cast<std::uint64_t>(quiet);
      report.op = op;
      report.all_ops = ops;
      report.threads = SnapshotThreadStacks();
      EmitReport(report);
    }

    lock.lock();
  }
}

}  // namespace

std::string StallReport::ToJson() const {
  std::string out;
  out.append("{\"event\":\"stall\",\"unix_ms\":");
  out.append(std::to_string(unix_ms));
  out.append(",\"stall_ms\":");
  out.append(std::to_string(stall_ms));
  out.append(",\"quiet_ms\":");
  out.append(std::to_string(quiet_ms));
  out.append(",\"op\":");
  internal::AppendOpJson(op, &out);
  out.append(",\"all_ops\":");
  out.append(OpsToJson(all_ops));
  out.append(",\"threads\":[");
  bool first = true;
  for (const ThreadStackSnapshot& t : threads) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"tid\":");
    out.append(std::to_string(t.tid));
    out.append(",\"op\":");
    out.append(std::to_string(t.op_id));
    out.append(",\"spans\":[");
    bool sfirst = true;
    for (const std::string& span : t.spans) {
      if (!sfirst) out.push_back(',');
      sfirst = false;
      internal::AppendJsonString(span, &out);
    }
    out.append("]}");
  }
  out.append("]}");
  return out;
}

bool StartWatchdog(std::uint64_t stall_ms, std::uint64_t poll_ms) {
  if (stall_ms == 0) return false;
  if (poll_ms == 0) {
    poll_ms = stall_ms / 4;
    if (poll_ms < 10) poll_ms = 10;
    if (poll_ms > 1000) poll_ms = 1000;
  }
  WatchdogState& w = WatchdogState::Get();
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.running) return false;
  w.running = true;
  w.stop = false;
  w.worker = std::thread(WatchLoop, stall_ms, poll_ms);
  return true;
}

void StopWatchdog() {
  WatchdogState& w = WatchdogState::Get();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.running) return;
    w.stop = true;
    w.cv.notify_all();
    joinable = std::move(w.worker);
    w.running = false;
  }
  joinable.join();
}

bool WatchdogRunning() {
  WatchdogState& w = WatchdogState::Get();
  std::lock_guard<std::mutex> lock(w.mu);
  return w.running;
}

void SetStallCallback(std::function<void(const StallReport&)> callback) {
  WatchdogState& w = WatchdogState::Get();
  std::lock_guard<std::mutex> lock(w.mu);
  if (callback) {
    w.callback = std::make_shared<std::function<void(const StallReport&)>>(
        std::move(callback));
  } else {
    w.callback.reset();
  }
}

std::uint64_t WatchdogStallReports() {
  return WatchdogState::Get().reports.load(std::memory_order_relaxed);
}

void InitWatchdogFromEnv() {
  static const bool initialized = [] {
    const char* env = std::getenv("VQDR_WATCHDOG_MS");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      unsigned long long ms = std::strtoull(env, &end, 10);
      if (end != nullptr && *end == '\0' && ms > 0) {
        StartWatchdog(static_cast<std::uint64_t>(ms));
      }
    }
    return true;
  }();
  (void)initialized;
}

}  // namespace vqdr::obs

#endif  // VQDR_OBS_DISABLED
