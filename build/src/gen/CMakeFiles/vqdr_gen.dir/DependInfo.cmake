
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/enumerate.cc" "src/gen/CMakeFiles/vqdr_gen.dir/enumerate.cc.o" "gcc" "src/gen/CMakeFiles/vqdr_gen.dir/enumerate.cc.o.d"
  "/root/repo/src/gen/random_instance.cc" "src/gen/CMakeFiles/vqdr_gen.dir/random_instance.cc.o" "gcc" "src/gen/CMakeFiles/vqdr_gen.dir/random_instance.cc.o.d"
  "/root/repo/src/gen/random_query.cc" "src/gen/CMakeFiles/vqdr_gen.dir/random_query.cc.o" "gcc" "src/gen/CMakeFiles/vqdr_gen.dir/random_query.cc.o.d"
  "/root/repo/src/gen/workloads.cc" "src/gen/CMakeFiles/vqdr_gen.dir/workloads.cc.o" "gcc" "src/gen/CMakeFiles/vqdr_gen.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/views/CMakeFiles/vqdr_views.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/vqdr_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vqdr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vqdr_base.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/vqdr_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/fo/CMakeFiles/vqdr_fo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
