#ifndef VQDR_BENCH_BENCH_JSON_H_
#define VQDR_BENCH_BENCH_JSON_H_

// Shared main() for the bench binaries: runs Google Benchmark with the
// normal console output AND writes a machine-readable BENCH_<name>.json
// next to the working directory (override the directory with
// VQDR_BENCH_OUT_DIR). The file carries, per benchmark, the adjusted
// real/cpu time and user counters, plus total wall time and the obs
// counter/histogram activity of the whole run — the data the perf
// trajectory (EXPERIMENTS.md) tracks across PRs.
//
// Usage, replacing BENCHMARK_MAIN():
//
//   VQDR_BENCH_MAIN("chase");   // writes BENCH_chase.json
//
// JSON shape:
//   {"bench":"chase","wall_time_s":1.23,
//    "benchmarks":[{"name":"BM_X/4","iterations":100,"real_time":12.5,
//                   "cpu_time":12.4,"time_unit":"us","counters":{...}}],
//    "obs":{"counters":{...},"histograms":{...}}}

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vqdr::benchjson {

struct RunRecord {
  std::string name;
  std::int64_t iterations = 0;
  double real_time = 0;
  double cpu_time = 0;
  std::string time_unit;
  std::map<std::string, double> counters;
};

// Console output as usual, capturing each per-iteration run on the side.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<RunRecord> records;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      RunRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = static_cast<std::int64_t>(run.iterations);
      rec.real_time = run.GetAdjustedRealTime();
      rec.cpu_time = run.GetAdjustedCPUTime();
      rec.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      for (const auto& [name, counter] : run.counters) {
        rec.counters[name] = counter.value;
      }
      records.push_back(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }
};

inline void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

inline std::string BuildReportJson(const char* bench_name, double wall_time_s,
                                   const std::vector<RunRecord>& records,
                                   const obs::MetricsSnapshot& delta) {
  std::string out = "{\"bench\":";
  obs::internal::AppendJsonString(bench_name, &out);
  out += ",\"wall_time_s\":";
  AppendDouble(wall_time_s, &out);
  out += ",\"benchmarks\":[";
  bool first = true;
  for (const RunRecord& rec : records) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    obs::internal::AppendJsonString(rec.name, &out);
    out += ",\"iterations\":";
    out += std::to_string(rec.iterations);
    out += ",\"real_time\":";
    AppendDouble(rec.real_time, &out);
    out += ",\"cpu_time\":";
    AppendDouble(rec.cpu_time, &out);
    out += ",\"time_unit\":";
    obs::internal::AppendJsonString(rec.time_unit, &out);
    out += ",\"counters\":{";
    bool first_counter = true;
    for (const auto& [name, value] : rec.counters) {
      if (!first_counter) out.push_back(',');
      first_counter = false;
      obs::internal::AppendJsonString(name, &out);
      out.push_back(':');
      AppendDouble(value, &out);
    }
    out += "}}";
  }
  out += "],\"obs\":";
  out += delta.ToJson();
  out += "}\n";
  return out;
}

inline int RunWithJsonReport(const char* bench_name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  obs::MetricsSnapshot before = obs::SnapshotMetrics();
  auto start = std::chrono::steady_clock::now();
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  double wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  obs::MetricsSnapshot delta = obs::SnapshotDelta(before);

  std::string path = std::string("BENCH_") + bench_name + ".json";
  if (const char* dir = std::getenv("VQDR_BENCH_OUT_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    std::cerr << "bench_json: cannot write " << path << "\n";
    benchmark::Shutdown();
    return 1;
  }
  file << BuildReportJson(bench_name, wall_time_s, reporter.records, delta);
  file.close();
  std::cout << "wrote " << path << "\n";

  benchmark::Shutdown();
  return 0;
}

}  // namespace vqdr::benchjson

#define VQDR_BENCH_MAIN(name)                                             \
  int main(int argc, char** argv) {                                       \
    return ::vqdr::benchjson::RunWithJsonReport(name, argc, argv);        \
  }

#endif  // VQDR_BENCH_BENCH_JSON_H_
