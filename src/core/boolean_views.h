#ifndef VQDR_CORE_BOOLEAN_VIEWS_H_
#define VQDR_CORE_BOOLEAN_VIEWS_H_

#include <optional>

#include "core/finite_search.h"
#include "cq/conjunctive_query.h"
#include "views/view_set.h"

namespace vqdr {

/// Exact decision procedure for *finite* determinacy when every view is a
/// Boolean CQ (the decidable special case of Theorem 4.6).
///
/// With Boolean views, the view image only reveals which of the 2^|V| truth
/// patterns holds, so V ↠ Q iff Q is constant on every realizable pattern
/// class. Each realizable class T has a hom-minimal member D_T (the union
/// of the frozen bodies of the views in T); by CQ monotonicity along
/// homomorphisms:
///
///  * T is realizable iff no view outside T holds on D_T;
///  * if Q holds on D_T it holds on the whole class;
///  * otherwise Q holds somewhere in the class iff some merge
///    W = D_T ∪ θ([Q]) (θ mapping frozen values of [Q] into adom(D_T) or
///    into merged fresh values) stays inside class T — a finite search over
///    identification patterns.
///
/// Non-Boolean queries are never determined by Boolean views unless their
/// answer is empty on every realizable class (genericity: a value-moving
/// permutation preserves every Boolean view image but moves a nonempty
/// answer), which the same merge search decides.
struct BooleanDeterminacyResult {
  bool determined = false;
  /// When not determined: a refuting pair with equal view images and
  /// different query answers.
  std::optional<DeterminacyCounterexample> counterexample;
  /// Number of realizable truth patterns examined.
  int realizable_classes = 0;
};

/// Requires: all views Boolean pure CQs; q a safe pure CQ.
BooleanDeterminacyResult DecideBooleanViewDeterminacy(
    const ViewSet& views, const ConjunctiveQuery& q);

}  // namespace vqdr

#endif  // VQDR_CORE_BOOLEAN_VIEWS_H_
