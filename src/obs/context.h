#ifndef VQDR_OBS_CONTEXT_H_
#define VQDR_OBS_CONTEXT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"

// Per-operation context: the identity layer of live telemetry (DESIGN.md
// §11). Every *top-level* engine call — AnalyzeDeterminacy, a containment
// check, a chase build, a counterexample/monotonicity search, the batch
// decider — allocates a process-unique operation id and binds it to the
// calling thread for the call's duration:
//
//   obs::OpScope op(obs::OpKind::kSearch, "search.determinacy", budget);
//
// While bound, every span, counter increment, heartbeat, log record, and
// guard checkpoint the thread produces attributes to that operation. Engine
// calls nested inside an in-flight operation do NOT open a new one — the
// OpScope is a no-op passthrough, so a containment check issued by the
// analysis battery attributes to the battery's op, matching how a caller
// thinks about the work.
//
// par::ThreadPool carries the context across task boundaries: Submit()
// captures CurrentOpHandle() and runs the task under an OpTaskScope, so
// work-stolen shards attribute to the operation that spawned them, not to
// whichever worker happened to run them.
//
// Everything here compiles to empty inline stubs under -DVQDR_OBS=OFF.

namespace vqdr::guard {
class Budget;
}  // namespace vqdr::guard

namespace vqdr::obs {

/// Process-unique operation id. 0 means "no operation".
using OpId = std::uint64_t;

/// What kind of top-level engine call an operation is.
enum class OpKind {
  kAnalyze,       // AnalyzeDeterminacy battery
  kDecide,        // DecideUnrestrictedDeterminacy (chase decision)
  kContainment,   // CqContainedIn / UcqContainedIn (and governed variants)
  kChase,         // BuildChaseChain
  kSearch,        // SearchDeterminacyCounterexample
  kMonotonicity,  // SearchMonotonicityViolation
  kBatch,         // DecideUnrestrictedDeterminacyBatch[Governed]
  kService,       // one vqdr-serve request (svc::Service::Handle)
  kOther,
};

/// Stable lowercase name ("analyze", "containment", ...).
inline const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAnalyze:
      return "analyze";
    case OpKind::kDecide:
      return "decide";
    case OpKind::kContainment:
      return "containment";
    case OpKind::kChase:
      return "chase";
    case OpKind::kSearch:
      return "search";
    case OpKind::kMonotonicity:
      return "monotonicity";
    case OpKind::kBatch:
      return "batch";
    case OpKind::kService:
      return "service";
    case OpKind::kOther:
      return "other";
  }
  return "other";
}

/// Maximum live span-stack depth recorded per thread (deeper spans still
/// trace/profile normally; only the live stack view truncates).
inline constexpr int kThreadStackDepth = 16;

#ifndef VQDR_OBS_DISABLED

namespace internal {

/// The registry's record of one in-flight operation. Mutators are relaxed
/// atomics (hot paths); registration/deregistration and snapshots are
/// serialized by the registry mutex in registry.cc.
struct OpSlot : std::enable_shared_from_this<OpSlot> {
  OpId id = 0;
  OpKind kind = OpKind::kOther;
  /// Engine entry-point name; a string literal, or (for dynamically labeled
  /// ops, e.g. per-request service labels) a pointer into owned_label.
  const char* label = "";
  /// Backing storage when the label is built at runtime; set only at
  /// registration, never mutated while the slot is live.
  std::string owned_label;
  /// Microseconds since the telemetry epoch at registration.
  std::uint64_t start_us = 0;
  /// Liveness ticks: guard checkpoints, progress strides, pool progress.
  std::atomic<std::uint64_t> heartbeats{0};
  /// Pool tasks that ran under this operation.
  std::atomic<std::uint64_t> tasks{0};
  /// Innermost live trace-span name anywhere in the operation (a string
  /// literal); starts as `label`.
  std::atomic<const char*> phase{""};
  /// The governed call's budget, nulled at deregistration (under the
  /// registry mutex) so snapshots never chase a dangling pointer.
  std::atomic<vqdr::guard::Budget*> budget{nullptr};
  /// Per-op counter deltas, index-aligned with obs::OpCounterNames().
  OpMetricCells cells;
  /// Intrusive links of the registry's live-op list (registry.cc only,
  /// guarded by the registry mutex). The list holds raw pointers: a slot is
  /// always kept alive by its OpScope for the whole time it is linked.
  OpSlot* reg_prev = nullptr;
  OpSlot* reg_next = nullptr;
};

/// A thread's live span stack + current op binding, readable from the
/// watchdog/registry threads (all atomics; names are string literals).
struct ThreadSlot {
  std::uint32_t tid = 0;
  std::atomic<OpId> op_id{0};
  std::atomic<int> depth{0};
  std::array<std::atomic<const char*>, kThreadStackDepth> names{};
};

extern thread_local OpSlot* t_current_op;

/// The calling thread's slot, registering one on first use.
ThreadSlot* EnsureThreadSlot();

/// Binds/unbinds `op` (may be null) to the calling thread: sets
/// t_current_op, the metrics attribution cells, and the thread slot's op id.
void BindOpToThread(OpSlot* op);

}  // namespace internal

/// Id of the operation the calling thread is bound to, or 0.
inline OpId CurrentOpId() {
  internal::OpSlot* op = internal::t_current_op;
  return op != nullptr ? op->id : 0;
}

/// Records `n` liveness ticks against the bound operation (no-op when none).
/// Fed by guard::Budget checkpoints, progress tickers, and pool progress;
/// the watchdog treats a frozen heartbeat count as the stall signal.
inline void OpHeartbeat(std::uint64_t n = 1) {
  internal::OpSlot* op = internal::t_current_op;
  if (op != nullptr) op->heartbeats.fetch_add(n, std::memory_order_relaxed);
}

/// RAII: opens (and registers) a new operation unless the thread is already
/// inside one, in which case it is a no-op passthrough. `label` must be a
/// string literal; `budget` (optional) lets the registry report the op's
/// budget state and is forgotten before the scope closes.
class OpScope {
 public:
  OpScope(OpKind kind, const char* label,
          vqdr::guard::Budget* budget = nullptr);
  /// Dynamically labeled variant (per-request service ops): the label is
  /// copied into the op slot, so it need not outlive the call.
  OpScope(OpKind kind, std::string label,
          vqdr::guard::Budget* budget = nullptr);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// This scope's op id; 0 for a nested passthrough scope.
  OpId id() const { return slot_ != nullptr ? slot_->id : 0; }

 private:
  std::shared_ptr<internal::OpSlot> slot_;
};

/// A copyable, owning reference to an in-flight operation, used to carry the
/// context across thread-pool task boundaries.
class OpHandle {
 public:
  OpHandle() = default;
  explicit operator bool() const { return slot_ != nullptr; }

 private:
  friend OpHandle CurrentOpHandle();
  friend class OpTaskScope;
  std::shared_ptr<internal::OpSlot> slot_;
};

/// Handle to the calling thread's bound operation (empty when none).
inline OpHandle CurrentOpHandle() {
  OpHandle h;
  internal::OpSlot* op = internal::t_current_op;
  if (op != nullptr) h.slot_ = op->shared_from_this();
  return h;
}

/// RAII: binds a captured operation to the executing (pool worker) thread
/// for one task, restoring the worker's previous binding afterwards.
class OpTaskScope {
 public:
  explicit OpTaskScope(const OpHandle& handle);
  ~OpTaskScope();

  OpTaskScope(const OpTaskScope&) = delete;
  OpTaskScope& operator=(const OpTaskScope&) = delete;

 private:
  std::shared_ptr<internal::OpSlot> slot_;
  internal::OpSlot* prev_ = nullptr;
};

#else  // VQDR_OBS_DISABLED

inline OpId CurrentOpId() { return 0; }
inline void OpHeartbeat(std::uint64_t = 1) {}

class OpScope {
 public:
  OpScope(OpKind, const char*, vqdr::guard::Budget* = nullptr) {}
  OpScope(OpKind, std::string, vqdr::guard::Budget* = nullptr) {}
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
  OpId id() const { return 0; }
};

class OpHandle {
 public:
  explicit operator bool() const { return false; }
};

inline OpHandle CurrentOpHandle() { return OpHandle{}; }

class OpTaskScope {
 public:
  explicit OpTaskScope(const OpHandle&) {}
  OpTaskScope(const OpTaskScope&) = delete;
  OpTaskScope& operator=(const OpTaskScope&) = delete;
};

#endif  // VQDR_OBS_DISABLED

}  // namespace vqdr::obs

#include "obs/obs_macros.h"

#endif  // VQDR_OBS_CONTEXT_H_
